//! The simulated system: N cores (ROB + private L1I/L1D/L2) over a shared
//! LLC and DRAM, with per-level prefetchers and the L1→L2 metadata channel.
//!
//! # Timing model
//!
//! The model is ChampSim-class and deliberately latency-composable: a
//! request's completion time is resolved when it is issued, by walking down
//! the hierarchy (each level adds its hit latency; DRAM adds bank/row/bus
//! queueing), and fills are applied when the clock reaches the completion
//! time. Structural limits — L1-D ports, MSHR occupancy at every level, the
//! FIFO prefetch queues that drop requests when full, and the shared DRAM
//! bus — are all enforced, because the paper's arguments (PQ pressure as
//! indirect throttling, MSHR-limited MLP, bandwidth contention in
//! multi-core mixes) live in exactly those structures.
//!
//! # Scheduling
//!
//! The clock is event-driven in two layers. Between cycles, [`System::run`]
//! jumps `now` straight to the next actionable cycle (earliest pending
//! fill, ROB-head completion, or fetch-stall release — each an O(1) read
//! of incrementally maintained state) after executing exactly one idle
//! cycle per gap; that single idle cycle is load-bearing, because stall
//! accounting and MSHR-full retry statistics are defined per *executed*
//! cycle. Within a cycle, each component is touched only when its own
//! cheap gate (cached earliest-fill time, PQ occupancy, pending-queue
//! length) says it can have work; `on_cycle` prefetcher hooks still fire
//! every executed cycle when any attached prefetcher uses them. Both
//! layers are behavior-preserving: the set of executed cycles and the work
//! done in each is identical to the exhaustive cycle-by-cycle sweep, so
//! reports are byte-identical.

use std::sync::Arc;

use ipcp_mem::{Ip, LineAddr, LINES_PER_PAGE, LINE_SHIFT, PAGE_SHIFT};
use ipcp_trace::{
    BatchStream, DerivedCols, Instr, InstrBatch, MemOp, TraceSource, KIND_LOAD, KIND_NONE,
};

use crate::cache::{Cache, Mshr, ProbeResult, QueuedPrefetch, FILL_UNKNOWN};
use crate::config::{Cycle, SimConfig};
use crate::dram::Dram;
use crate::prefetch::{
    AccessInfo, AddrDecode, DemandKind, FillInfo, FillLevel, MetadataArrival, PrefetchRequest,
    Prefetcher, VecSink,
};
use crate::sched::{self, Calendar, SchedStats};
use crate::stats::{CoreReport, CoreStats, PhaseStats, SimReport};
use crate::telemetry::{Occupancy, Sampler, Snapshot};
use crate::tlb::Tlb;
use crate::vmem::PageMapper;

/// Cycles between a demand access and the prefetch requests it generates
/// leaving the prefetcher — the paper's 3-cycle IPCP issue pipeline.
const PF_ISSUE_LATENCY: Cycle = 3;
/// Cycles to forward a fill one level up the hierarchy.
const FILL_FORWARD: Cycle = 1;
/// Prefetch-queue entries drained per cache per cycle.
const PF_DRAIN_PER_CYCLE: usize = 2;
/// Cycles without a retirement after which the simulator declares deadlock.
const WATCHDOG_CYCLES: Cycle = 10_000_000;

/// Per-core wiring handed to [`System::new`].
pub struct CoreSetup {
    /// The instruction trace this core executes (replayed on exhaustion).
    pub trace: Arc<dyn TraceSource + Send + Sync>,
    /// L1-I (instruction-side) prefetcher. Defaults to
    /// [`crate::prefetch::NoPrefetcher`] via [`CoreSetup::new`]; a non-noop
    /// prefetcher here routes every new ifetch line through the full
    /// [`System::ifetch`] path so its hooks fire identically under the fast
    /// and naive schedulers.
    pub l1i_prefetcher: Box<dyn Prefetcher>,
    /// L1-D prefetcher.
    pub l1d_prefetcher: Box<dyn Prefetcher>,
    /// L2 prefetcher.
    pub l2_prefetcher: Box<dyn Prefetcher>,
}

impl CoreSetup {
    /// Wiring with no instruction-side prefetcher (the historical shape —
    /// every data-side figure uses this).
    pub fn new(
        trace: Arc<dyn TraceSource + Send + Sync>,
        l1d_prefetcher: Box<dyn Prefetcher>,
        l2_prefetcher: Box<dyn Prefetcher>,
    ) -> Self {
        Self {
            trace,
            l1i_prefetcher: Box::new(crate::prefetch::NoPrefetcher),
            l1d_prefetcher,
            l2_prefetcher,
        }
    }

    /// Attaches an L1-I prefetcher.
    #[must_use]
    pub fn with_l1i_prefetcher(mut self, p: Box<dyn Prefetcher>) -> Self {
        self.l1i_prefetcher = p;
        self
    }
}

impl std::fmt::Debug for CoreSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreSetup")
            .field("trace", &self.trace.name())
            .finish()
    }
}

struct Rob {
    cap: usize,
    head: u64,
    tail: u64,
    /// Ring index of `head` (kept in step with `head` so the retire hot
    /// path never divides by the runtime capacity).
    head_idx: usize,
    /// Ring index of `tail`.
    tail_idx: usize,
    completion: Vec<Cycle>,
}

impl Rob {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            head: 0,
            tail: 0,
            head_idx: 0,
            tail_idx: 0,
            completion: vec![FILL_UNKNOWN; cap],
        }
    }

    fn is_full(&self) -> bool {
        (self.tail - self.head) as usize >= self.cap
    }

    fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    fn wrap(&self, idx: usize) -> usize {
        let next = idx + 1;
        if next == self.cap {
            0
        } else {
            next
        }
    }

    /// Pushes an entry; returns its sequence number and ring slot (the slot
    /// lets later completion updates skip the seq→index arithmetic).
    fn push(&mut self, completion: Cycle) -> (u64, usize) {
        debug_assert!(!self.is_full());
        let seq = self.tail;
        let slot = self.tail_idx;
        self.completion[slot] = completion;
        self.tail += 1;
        self.tail_idx = self.wrap(slot);
        (seq, slot)
    }

    /// Free slots.
    fn space(&self) -> usize {
        self.cap - (self.tail - self.head) as usize
    }

    /// Pushes `k` entries sharing one completion time as at most two
    /// contiguous slice fills across the ring wrap (the bulk path for
    /// non-memory instruction runs).
    fn push_n(&mut self, completion: Cycle, k: usize) {
        debug_assert!(k > 0 && k <= self.space());
        let first = self.tail_idx;
        let end1 = (first + k).min(self.cap);
        self.completion[first..end1].fill(completion);
        let rem = k - (end1 - first);
        self.completion[..rem].fill(completion);
        self.tail += k as u64;
        self.tail_idx = if rem > 0 {
            rem
        } else if end1 == self.cap {
            0
        } else {
            end1
        };
    }

    /// How many of the oldest entries (capped at `width`) have completed by
    /// `now`. `c <= now` alone suffices: [`FILL_UNKNOWN`] is `Cycle::MAX`,
    /// which can never be `<= now`.
    fn retire_ready(&self, now: Cycle, width: u32) -> u32 {
        let lim = ((self.tail - self.head) as usize).min(width as usize);
        let first = self.head_idx;
        let end1 = (first + lim).min(self.cap);
        let mut k = 0;
        for &c in &self.completion[first..end1] {
            if c > now {
                return k;
            }
            k += 1;
        }
        for &c in &self.completion[..lim - (end1 - first)] {
            if c > now {
                return k;
            }
            k += 1;
        }
        k
    }

    /// Drops the `k` oldest entries (counted by [`Rob::retire_ready`]).
    fn pop_n(&mut self, k: u32) {
        debug_assert!((k as u64) <= self.tail - self.head);
        self.head += u64::from(k);
        let i = self.head_idx + k as usize;
        self.head_idx = if i >= self.cap { i - self.cap } else { i };
    }

    fn set_completion(&mut self, seq: u64, slot: usize, completion: Cycle) {
        debug_assert!(seq >= self.head && seq < self.tail);
        debug_assert_eq!(slot, (seq % self.cap as u64) as usize);
        self.completion[slot] = completion;
    }

    fn head_completion(&self) -> Option<Cycle> {
        if self.is_empty() {
            None
        } else {
            Some(self.completion[self.head_idx])
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingMem {
    seq: u64,
    slot: usize,
    ip: Ip,
    store: bool,
    /// Virtual line of the access (`vaddr >> LINE_SHIFT`).
    vline: LineAddr,
    /// Virtual page of the access (`vaddr >> PAGE_SHIFT`).
    vpage: u64,
    /// Prefetcher-trigger address fields, decoded once at dispatch (from
    /// the trace's derived columns on the fast path) instead of per issue
    /// attempt.
    decode: AddrDecode,
}

impl PendingMem {
    /// Row-oriented constructor (the naive fetch path): derives the
    /// line/page/decode fields from the raw virtual address.
    fn new(seq: u64, slot: usize, ip: Ip, vaddr: ipcp_mem::VAddr, store: bool) -> Self {
        let vline = vaddr.line();
        Self {
            seq,
            slot,
            ip,
            store,
            vline,
            vpage: vaddr.page().raw(),
            decode: AddrDecode::of(ip, vline),
        }
    }
}

struct Core {
    trace: Arc<dyn TraceSource + Send + Sync>,
    stream: Box<dyn BatchStream>,
    /// Columnar look-ahead buffer: one [`BatchStream::next_batch`] call
    /// refills all [`ipcp_trace::BATCH_CAPACITY`] slots at once, so
    /// materialized traces hand instructions over by per-column `memcpy`
    /// and even generator-backed traces pay the stream dispatch once per
    /// batch.
    ibuf: InstrBatch,
    ibuf_pos: usize,
    /// Derived address columns over `ibuf` (line/page/offset/region/IP-key
    /// per slot), recomputed once per batch refill on the fast path so the
    /// per-instruction dispatch and issue paths read precomputed values.
    /// Unused (left empty) on the naive path, which derives per access.
    derived: DerivedCols,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    tlb: Tlb,
    l1i_pf: Box<dyn Prefetcher>,
    l1d_pf: Box<dyn Prefetcher>,
    l2_pf: Box<dyn Prefetcher>,
    /// Cached `is_noop` of the attached prefetchers: the access hooks
    /// assemble an event struct and make a virtual call on every demand
    /// access, which is dead weight for the ubiquitous `none` baseline.
    /// `l1i_pf_noop` additionally gates the fast repeat-ifetch memo: a
    /// non-noop I-side prefetcher must observe every new ifetch line, so
    /// the memo shortcut stands down and both schedulers take the full
    /// [`System::ifetch`] path (the exactness contract of DESIGN.md §12).
    l1i_pf_noop: bool,
    l1d_pf_noop: bool,
    l2_pf_noop: bool,
    /// Per-core page mapper: each trace is its own process with a private
    /// virtual address space (multi-programmed mixes must not share pages).
    mapper: PageMapper,
    rob: Rob,
    pending: std::collections::VecDeque<PendingMem>,
    last_ifetch_line: Option<LineAddr>,
    fetch_stall_until: Cycle,
    retired_total: u64,
    measure_start_instr: u64,
    measure_start_cycle: Cycle,
    stall_cycles: u64,
    /// L1-D prefetcher RR-filter drop counts at end of warm-up. The
    /// prefetcher's counters are lifetime (never reset), so reported
    /// per-class drops are `lifetime − baseline`, mirroring how cache
    /// stats are reset at the warm-up boundary.
    rr_drop_baseline: [u64; 4],
    finished: Option<CoreStats>,
}

impl Core {
    /// L1-D stats with the prefetcher's measured-phase RR-filter drops
    /// folded in (see `rr_drop_baseline`).
    fn l1d_stats_with_drops(&self) -> crate::stats::CacheStats {
        let mut stats = self.l1d.stats;
        let lifetime = self.l1d_pf.filter_drops_by_class();
        for (slot, (life, base)) in stats
            .rr_drops_by_class
            .iter_mut()
            .zip(lifetime.iter().zip(self.rr_drop_baseline.iter()))
        {
            *slot = life - base;
        }
        stats
    }
}

impl Core {
    #[inline]
    fn next_instr(&mut self) -> Instr {
        if self.ibuf_pos < self.ibuf.len() {
            let i = self.ibuf.get(self.ibuf_pos);
            self.ibuf_pos += 1;
            return i;
        }
        self.refill_ibuf()
    }

    /// Refills the look-ahead buffer, restarting the trace on exhaustion
    /// (traces replay until the instruction budget is met). Returns the
    /// first buffered instruction.
    #[cold]
    fn refill_ibuf(&mut self) -> Instr {
        self.ibuf_pos = 1;
        if self.stream.next_batch(&mut self.ibuf) > 0 {
            return self.ibuf.get(0);
        }
        // Stream exhausted on a batch boundary: reopen from the start.
        self.stream = self.trace.batch_stream();
        assert!(
            self.stream.next_batch(&mut self.ibuf) > 0,
            "trace must be non-empty"
        );
        self.ibuf.get(0)
    }

    /// Fast-path refill: same stream consumption as [`Core::refill_ibuf`]
    /// (so both paths see identical batch boundaries) but positions start
    /// at 0 and the derived address columns are recomputed for the batch.
    #[cold]
    fn refill_batch(&mut self) {
        self.ibuf_pos = 0;
        if self.stream.next_batch(&mut self.ibuf) == 0 {
            self.stream = self.trace.batch_stream();
            assert!(
                self.stream.next_batch(&mut self.ibuf) > 0,
                "trace must be non-empty"
            );
        }
        self.derived.compute(&self.ibuf);
    }
}

/// The full simulated machine.
pub struct System {
    cfg: SimConfig,
    now: Cycle,
    cores: Vec<Core>,
    llc: Cache,
    llc_pf: Box<dyn Prefetcher>,
    dram: Dram,
    warmed_up: bool,
    last_retire_cycle: Cycle,
    /// Interval sampler (`None` unless `cfg.sample_interval` is set — the
    /// disabled path costs one `Option` check per cycle).
    sampler: Option<Sampler>,
    /// `IPCP_DEBUG_PF` present at construction — checked once instead of
    /// an environment lookup on every merge/prefetch event.
    debug_pf: bool,
    /// Any attached prefetcher implements `on_cycle` (checked once at
    /// construction); when false the per-cycle hook pass is skipped.
    cycle_hooks: bool,
    /// Cached `is_noop` of the LLC prefetcher (see `Core::l1d_pf_noop`).
    llc_pf_noop: bool,
    /// Scratch sink handed to prefetcher hooks, swapped out of `self` for
    /// the duration of each call so its buffer capacity is reused across
    /// the millions of hook invocations per run.
    pf_scratch: VecSink,
    /// Wakeup-driven scheduler enabled (fixed at construction): requires
    /// the component set to fit the `u64` due-mask and stands down
    /// entirely under `no_fastpath`, so the PR 5 oracle compares against
    /// the exhaustive polling walk. See `crate::sched` and DESIGN.md §10.
    fast: bool,
    /// Central wakeup calendar over the fill components (LLC plus
    /// per-core L2/L1D/L1I fill heaps).
    cal: Calendar,
    /// Bitmask of possibly-non-empty prefetch queues (bit layout in
    /// `crate::sched`). Every enqueue site sets its bit, so a clear bit
    /// proves an empty queue; a stale set bit (queue drained empty) is
    /// cleared by the next drain pass at no behavioral cost.
    pq_active: u64,
    /// Per-core earliest cycle the core can possibly act (`0` = hot:
    /// touched every executed cycle). Recomputed at the end of each
    /// touch; exact because only the core's own retire/issue/fetch
    /// mutate its wake inputs (pending queue, resolved ROB completions,
    /// fetch stall, ROB occupancy).
    wake_at: Vec<Cycle>,
    /// Per-core executed-cycle count through which `stall_cycles` is
    /// settled — lazy stall accounting for cycles where the core was
    /// skipped (a skipped core retires nothing, so each skipped executed
    /// cycle is exactly one stall cycle).
    last_touch: Vec<u64>,
    /// Cores still short of `warmup_instructions`; warm-up ends when 0.
    warm_pending: usize,
    /// Cores whose `finished` snapshot has been taken.
    finished_count: usize,
    /// Core-0 `retired_total` at which the next interval sample is due
    /// (`u64::MAX` when sampling is off): the per-cycle sampler check is
    /// one integer compare instead of a `Sampler::due` call.
    sample_due_abs: u64,
    /// Scheduler observability counters (`heap_peak` is folded in at
    /// report time). Maintained unconditionally on the fast path —
    /// plain integer adds — and exported only when `sched_stats_export`.
    sstats: SchedStats,
    /// `IPCP_SCHED_STATS` was set at construction.
    sched_stats_export: bool,
    /// `IPCP_PHASE_STATS` was set at construction: coarse wall-clock phase
    /// timers accumulate into `phases` (observability only — see
    /// [`PhaseStats`]; the disabled path costs one branch per phase).
    phase_on: bool,
    /// Accumulated phase timers (exported only when `phase_on`).
    phases: PhaseStats,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("cores", &self.cores.len())
            .finish()
    }
}

impl System {
    /// Builds a system. `setups.len()` must equal `cfg.cores`; `llc_prefetcher`
    /// attaches to the shared LLC.
    ///
    /// # Panics
    ///
    /// Panics if the core count does not match the configuration.
    pub fn new(
        cfg: SimConfig,
        setups: Vec<CoreSetup>,
        llc_prefetcher: Box<dyn Prefetcher>,
    ) -> Self {
        assert_eq!(
            setups.len(),
            cfg.cores as usize,
            "core setups must match cfg.cores"
        );
        let vmem_seed = cfg.vmem_seed;
        let cores: Vec<Core> = setups
            .into_iter()
            .enumerate()
            .map(|(ci, s)| {
                let stream = s.trace.batch_stream();
                Core {
                    trace: s.trace,
                    stream,
                    ibuf: InstrBatch::new(),
                    ibuf_pos: 0,
                    derived: DerivedCols::default(),
                    mapper: PageMapper::new(vmem_seed.wrapping_add(ci as u64 * 0x9e37_79b9)),
                    l1i: Cache::new_with_mode(&cfg.l1i, 1, cfg.no_fastpath),
                    l1d: Cache::new_with_mode(&cfg.l1d, 1, cfg.no_fastpath),
                    l2: Cache::new_with_mode(&cfg.l2, 1, cfg.no_fastpath),
                    tlb: Tlb::new(&cfg.tlb).with_naive(cfg.no_fastpath),
                    l1i_pf_noop: s.l1i_prefetcher.is_noop(),
                    l1d_pf_noop: s.l1d_prefetcher.is_noop(),
                    l2_pf_noop: s.l2_prefetcher.is_noop(),
                    l1i_pf: s.l1i_prefetcher,
                    l1d_pf: s.l1d_prefetcher,
                    l2_pf: s.l2_prefetcher,
                    rob: Rob::new(cfg.core.rob_entries as usize),
                    pending: std::collections::VecDeque::new(),
                    last_ifetch_line: None,
                    fetch_stall_until: 0,
                    retired_total: 0,
                    measure_start_instr: 0,
                    measure_start_cycle: 0,
                    stall_cycles: 0,
                    rr_drop_baseline: [0; 4],
                    finished: None,
                }
            })
            .collect();
        let llc = Cache::new_with_mode(&cfg.llc, cfg.cores, cfg.no_fastpath);
        let dram = Dram::new(cfg.dram);
        let sampler = cfg.sample_interval.map(Sampler::new);
        let cycle_hooks = llc_prefetcher.uses_cycle_hook()
            || cores.iter().any(|c: &Core| {
                c.l1i_pf.uses_cycle_hook()
                    || c.l1d_pf.uses_cycle_hook()
                    || c.l2_pf.uses_cycle_hook()
            });
        let llc_pf_noop = llc_prefetcher.is_noop();
        let fast = !cfg.no_fastpath && cores.len() <= sched::MAX_FAST_CORES;
        let warm_pending = if cfg.warmup_instructions > 0 {
            cores.len()
        } else {
            0
        };
        let cal = Calendar::new(3 * cores.len() + 1);
        let wake_at = vec![0; cores.len()];
        let last_touch = vec![0; cores.len()];
        Self {
            cfg,
            now: 0,
            cores,
            llc,
            llc_pf: llc_prefetcher,
            dram,
            warmed_up: false,
            last_retire_cycle: 0,
            sampler,
            debug_pf: std::env::var_os("IPCP_DEBUG_PF").is_some(),
            cycle_hooks,
            llc_pf_noop,
            pf_scratch: VecSink::new(),
            fast,
            cal,
            pq_active: 0,
            wake_at,
            last_touch,
            warm_pending,
            finished_count: 0,
            sample_due_abs: u64::MAX,
            sstats: SchedStats::default(),
            sched_stats_export: env_flag("IPCP_SCHED_STATS"),
            phase_on: env_flag("IPCP_PHASE_STATS"),
            phases: PhaseStats::default(),
        }
    }

    /// Starts a phase timer (`None` when phase stats are off, so the hot
    /// path pays one predictable branch).
    #[inline]
    fn phase_start(&self) -> Option<std::time::Instant> {
        if self.phase_on {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// Accumulates a phase timer started by [`System::phase_start`].
    #[inline]
    fn phase_add(field: &mut u64, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            *field += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Runs warm-up plus the measured phase and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the system deadlocks (no retirement for an implausibly long
    /// stretch) — that indicates a simulator bug, not a workload property.
    pub fn run(&mut self) -> SimReport {
        if self.fast {
            self.run_fast();
        } else {
            self.run_naive();
        }
        self.report()
    }

    /// The exhaustive polling walk: every iteration runs [`Self::cycle`],
    /// which probes every component's gate, and idle jumps rescan every
    /// core in [`Self::next_event_time`]. This is the oracle reference the
    /// wakeup scheduler is byte-compared against (`IPCP_NO_FASTPATH`), and
    /// the fallback for core counts past `sched::MAX_FAST_CORES`.
    fn run_naive(&mut self) {
        loop {
            let activity = self.cycle();
            if !self.warmed_up
                && self
                    .cores
                    .iter()
                    .all(|c| c.retired_total >= self.cfg.warmup_instructions)
            {
                self.finish_warmup();
            }
            if self.warmed_up {
                self.maybe_sample();
                if self.cores.iter().all(|c| c.finished.is_some()) {
                    break;
                }
            }
            if activity {
                self.now += 1;
            } else {
                let next = self.next_event_time().unwrap_or(self.now + 1);
                self.now = next.max(self.now + 1);
            }
            assert!(
                self.now - self.last_retire_cycle < WATCHDOG_CYCLES,
                "simulator deadlock: no retirement since cycle {} (now {})",
                self.last_retire_cycle,
                self.now
            );
        }
    }

    /// The wakeup-driven loop. Identical iteration structure to
    /// [`Self::run_naive`] — same executed-cycle sequence, same idle
    /// jumps, same warm-up/sample/finish decision points — but each
    /// per-cycle check is O(1) against cached state (due-wakeup mask,
    /// PQ bitmask, per-core wake cycles, retirement-count thresholds)
    /// instead of a walk over every component.
    fn run_fast(&mut self) {
        loop {
            let activity = self.cycle_fast();
            if !self.warmed_up && self.warm_pending == 0 {
                self.finish_warmup();
            }
            if self.warmed_up {
                if self
                    .cores
                    .first()
                    .is_some_and(|c| c.retired_total >= self.sample_due_abs)
                {
                    self.maybe_sample();
                    self.recompute_sample_due();
                }
                if self.finished_count == self.cores.len() {
                    break;
                }
            }
            if activity {
                self.now += 1;
            } else {
                let next = self.jump_target();
                self.sstats.skipped_cycles += next - self.now - 1;
                self.now = next;
            }
            assert!(
                self.now - self.last_retire_cycle < WATCHDOG_CYCLES,
                "simulator deadlock: no retirement since cycle {} (now {})",
                self.last_retire_cycle,
                self.now
            );
        }
    }

    /// One simulated cycle on the wakeup path. Touches only components
    /// whose wakeup is due: fill heaps via the calendar's due set, PQ
    /// drains via the active-queue bitmask, cores via their wake cycle.
    /// Skipping is behavior-neutral because each skipped call would have
    /// fallen through its own gate (see DESIGN.md §10 for the argument
    /// per component class).
    fn cycle_fast(&mut self) -> bool {
        let now = self.now;
        let mut activity = false;

        // Fill wakeups due this cycle, drained into a component bitmask
        // (ascending component id reproduces the polling walk's order:
        // LLC first, then per-core L2, L1D, L1I).
        let mut due = 0u64;
        while let Some(id) = self.cal.pop_due(now) {
            due |= 1u64 << id;
            self.sstats.wakeups_fired += 1;
        }
        if due != 0 {
            let t0 = self.phase_start();
            activity |= self.process_due_fills(due);
            Self::phase_add(&mut self.phases.fill_ns, t0);
        }

        // PQ drains. The snapshot makes mid-phase enqueues wait for the
        // next executed cycle, exactly like the polling walk's one-pass
        // `pq_len()` checks (the only mid-phase enqueue source, L1-drain
        // metadata arrival, targets the same core's L2 — a queue whose
        // check has already passed in either scheme).
        if self.pq_active != 0 {
            let t0 = self.phase_start();
            let mut bits = self.pq_active;
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                if b == sched::PQ_LLC {
                    activity |= self.drain_llc_pq();
                    if self.llc.pq_len() == 0 {
                        self.pq_active &= !(1u64 << b);
                    }
                } else {
                    let ci = ((b - 1) / 3) as usize;
                    match (b - 1) % 3 {
                        0 => {
                            activity |= self.drain_l2_pq(ci);
                            if self.cores[ci].l2.pq_len() == 0 {
                                self.pq_active &= !(1u64 << b);
                            }
                        }
                        1 => {
                            activity |= self.drain_l1_pq(ci);
                            if self.cores[ci].l1d.pq_len() == 0 {
                                self.pq_active &= !(1u64 << b);
                            }
                        }
                        _ => {
                            activity |= self.drain_l1i_pq(ci);
                            if self.cores[ci].l1i.pq_len() == 0 {
                                self.pq_active &= !(1u64 << b);
                            }
                        }
                    }
                }
            }
            Self::phase_add(&mut self.phases.drain_ns, t0);
        }

        // Cores, gated on their wake cycle. A skipped core would have
        // retired nothing (head completion unresolved or future), issued
        // nothing (pending empty), and fetched nothing (stalled or ROB
        // full) — and none of its wake inputs can change while skipped,
        // so freezing it is exact. Stall cycles for the skipped stretch
        // are settled lazily at the next touch.
        for ci in 0..self.cores.len() {
            if self.wake_at[ci] > now {
                continue;
            }
            let missed = self.sstats.executed_cycles - self.last_touch[ci];
            self.cores[ci].stall_cycles += missed;
            self.last_touch[ci] = self.sstats.executed_cycles + 1;
            let t0 = self.phase_start();
            let retired = self.retire(ci);
            if retired == 0 {
                self.cores[ci].stall_cycles += 1;
            } else {
                activity = true;
                self.last_retire_cycle = now;
            }
            if !self.cores[ci].pending.is_empty() {
                activity |= self.issue_fused(ci) > 0;
            }
            Self::phase_add(&mut self.phases.issue_ns, t0);
            let t0 = self.phase_start();
            activity |= self.fetch_fast(ci) > 0;
            Self::phase_add(&mut self.phases.decode_ns, t0);
            self.wake_at[ci] = self.core_wake(ci);
        }

        self.run_on_cycle_hooks();
        self.sstats.executed_cycles += 1;
        activity
    }

    /// Dispatches due fill wakeups in ascending component order and
    /// re-arms each processed component from its post-drain heap minimum
    /// (the re-arm half of the wakeup contract: whoever pops fills must
    /// re-register the remainder).
    fn process_due_fills(&mut self, mut due: u64) -> bool {
        let mut any = false;
        while due != 0 {
            let id = due.trailing_zeros();
            due &= due - 1;
            if id == sched::COMP_LLC {
                any |= self.fill_llc();
                let nf = self.llc.next_fill_raw();
                self.cal.note(sched::COMP_LLC, nf);
            } else {
                let ci = ((id - 1) / 3) as usize;
                match (id - 1) % 3 {
                    0 => {
                        any |= self.fill_l2(ci);
                        let nf = self.cores[ci].l2.next_fill_raw();
                        self.cal.note(id, nf);
                    }
                    1 => {
                        any |= self.fill_l1d(ci);
                        let nf = self.cores[ci].l1d.next_fill_raw();
                        self.cal.note(id, nf);
                    }
                    _ => {
                        any |= self.fill_l1i(ci);
                        let nf = self.cores[ci].l1i.next_fill_raw();
                        self.cal.note(id, nf);
                    }
                }
            }
        }
        any
    }

    /// The earliest cycle core `ci` can possibly act, evaluated after a
    /// touch (`0` = hot). Exact: while the core is skipped nothing can
    /// move any of these inputs earlier — fills resolve future demand
    /// latencies but never rewrite an already-resolved ROB completion,
    /// and `pending`/`fetch_stall_until`/ROB occupancy are written only
    /// by the core's own retire/issue/fetch.
    fn core_wake(&self, ci: usize) -> Cycle {
        let core = &self.cores[ci];
        // An unissued memory op keeps the core hot: issue retries consume
        // L1D ports and touch the TLB every executed cycle.
        if !core.pending.is_empty() {
            return 0;
        }
        let now = self.now;
        let mut wake = Cycle::MAX;
        if let Some(c) = core.rob.head_completion() {
            if c == FILL_UNKNOWN {
                // Unreachable when `pending` is empty (every entry not in
                // `pending` has a resolved completion) — stay hot rather
                // than risk a missed retirement.
                return 0;
            }
            wake = wake.min(c.max(now + 1));
        }
        if !core.rob.is_full() {
            // Fetch runs (and always makes progress — traces replay) as
            // soon as the stall lifts.
            wake = wake.min(core.fetch_stall_until.max(now + 1));
        }
        // A full ROB with a resolved head always yields a finite wake; an
        // empty ROB is never full, so the fetch term applies. Either way
        // `wake` is finite here.
        wake
    }

    /// Fast-path idle jump: same candidate set and filters as
    /// [`Self::next_event_time`] (fill minima — via the calendar — plus
    /// ROB-head completions and pending fetch stalls), collapsed to the
    /// polling walk's `unwrap_or(now + 1).max(now + 1)` advance rule.
    fn jump_target(&mut self) -> Cycle {
        let now = self.now;
        let mut t: Option<Cycle> = self.cal.peek_min();
        let mut consider = |c: Cycle| {
            if c != FILL_UNKNOWN && c > 0 {
                t = Some(t.map_or(c, |x: Cycle| x.min(c)));
            }
        };
        for core in &self.cores {
            if let Some(c) = core.rob.head_completion() {
                consider(c);
            }
            if core.fetch_stall_until > now {
                consider(core.fetch_stall_until);
            }
        }
        match t {
            Some(c) if c > now => c,
            _ => now + 1,
        }
    }

    /// Re-caches the absolute core-0 retirement count of the next due
    /// sample (the satellite `maybe_sample` fast path).
    fn recompute_sample_due(&mut self) {
        self.sample_due_abs = match (&self.sampler, self.cores.first()) {
            (Some(s), Some(c0)) => c0.measure_start_instr.saturating_add(s.next_due()),
            _ => u64::MAX,
        };
    }

    /// Registers a fill component's heap minimum in the calendar (no-op
    /// on the polling path, which rescans heaps directly).
    #[inline]
    fn arm_fill(&mut self, id: u32, t: Cycle) {
        if self.fast {
            self.cal.note(id, t);
        }
    }

    /// Marks a prefetch queue as possibly non-empty (no-op on the polling
    /// path, whose drain phase checks `pq_len` directly).
    #[inline]
    fn mark_pq(&mut self, bit: u32) {
        if self.fast {
            self.pq_active |= 1u64 << bit;
        }
    }

    fn finish_warmup(&mut self) {
        self.warmed_up = true;
        for core in &mut self.cores {
            core.l1i.reset_stats();
            core.l1d.reset_stats();
            core.l2.reset_stats();
            core.tlb.stats.reset();
            core.measure_start_instr = core.retired_total;
            core.measure_start_cycle = self.now;
            core.stall_cycles = 0;
            core.rr_drop_baseline = core.l1d_pf.filter_drops_by_class();
        }
        self.llc.reset_stats();
        self.dram.stats.reset();
        if let Some(s) = &mut self.sampler {
            s.reset_baseline();
        }
        // Fast-scheduler bookkeeping across the measurement boundary:
        // stall accounting restarts from zero (already settled through the
        // reset above), and every core is forced hot for one cycle so the
        // post-warm-up `finished` check runs even if `sim_instructions`
        // needs no further retirement. Harmless on the polling path.
        for ci in 0..self.cores.len() {
            self.last_touch[ci] = self.sstats.executed_cycles;
            self.wake_at[ci] = 0;
        }
        self.recompute_sample_due();
    }

    /// Records an interval sample when core 0's measured instruction count
    /// has crossed the next sampling point. Private-cache counters are
    /// aggregated across cores; occupancies are instantaneous.
    fn maybe_sample(&mut self) {
        let marker = match (&self.sampler, self.cores.first()) {
            (Some(s), Some(c0)) => {
                let marker = c0.retired_total - c0.measure_start_instr;
                if !s.due(marker) {
                    return;
                }
                marker
            }
            _ => return,
        };
        let mut shot = Snapshot {
            cycles: self.now - self.cores[0].measure_start_cycle,
            llc: self.llc.stats,
            dram_busy: self.dram.stats.bus_busy_cycles,
            ..Snapshot::default()
        };
        let mut occ = Occupancy {
            llc_pq: self.llc.pq_len() as u32,
            llc_mshr: self.llc.mshr_occupancy() as u32,
            ..Occupancy::default()
        };
        for c in &self.cores {
            shot.instructions += c.retired_total - c.measure_start_instr;
            shot.l1d.accumulate(&c.l1d_stats_with_drops());
            shot.l2.accumulate(&c.l2.stats);
            occ.l1d_pq += c.l1d.pq_len() as u32;
            occ.l1d_mshr += c.l1d.mshr_occupancy() as u32;
            occ.l2_pq += c.l2.pq_len() as u32;
            occ.l2_mshr += c.l2.mshr_occupancy() as u32;
        }
        let channels = self.cfg.dram.channels;
        self.sampler
            .as_mut()
            .expect("sampler checked above")
            .record(marker, shot, occ, channels);
    }

    fn report(&self) -> SimReport {
        let cores = self
            .cores
            .iter()
            .map(|c| CoreReport {
                trace: c.trace.name().to_string(),
                core: c.finished.unwrap_or(CoreStats {
                    instructions: c.retired_total - c.measure_start_instr,
                    cycles: self.now - c.measure_start_cycle,
                    stall_cycles: c.stall_cycles,
                }),
                l1i: c.l1i.stats,
                l1d: c.l1d_stats_with_drops(),
                l2: c.l2.stats,
                tlb: c.tlb.stats,
            })
            .collect();
        SimReport {
            cores,
            llc: self.llc.stats,
            dram: self.dram.stats,
            cycles: self.now - self.cores.first().map_or(0, |c| c.measure_start_cycle),
            samples: self
                .sampler
                .as_ref()
                .map_or_else(Default::default, |s| s.samples().into()),
            sched: (self.fast && self.sched_stats_export).then(|| {
                let mut st = self.sstats;
                st.heap_peak = self.cal.heap_peak();
                st
            }),
            phases: self.phase_on.then_some(self.phases),
        }
    }

    /// The earliest future event: any pending fill or a known ROB-head
    /// completion or fetch-stall release.
    fn next_event_time(&self) -> Option<Cycle> {
        let mut t: Option<Cycle> = None;
        let mut consider = |c: Option<Cycle>| {
            if let Some(c) = c {
                if c != FILL_UNKNOWN && c > 0 {
                    t = Some(t.map_or(c, |x: Cycle| x.min(c)));
                }
            }
        };
        consider(self.llc.next_fill_time());
        for core in &self.cores {
            consider(core.l1i.next_fill_time());
            consider(core.l1d.next_fill_time());
            consider(core.l2.next_fill_time());
            consider(core.rob.head_completion());
            if core.fetch_stall_until > self.now {
                consider(Some(core.fetch_stall_until));
            }
        }
        t.filter(|&c| c > self.now)
    }

    /// One simulated cycle; returns whether anything happened.
    ///
    /// Event-driven: each component is touched only when its own O(1) state
    /// says it can have work this cycle (a due fill on the cached heap
    /// minimum, a non-empty PQ, a pending/ROB entry). Skipping a component
    /// whose gate is closed is behavior-neutral by construction — the
    /// skipped call would have fallen straight through its first check —
    /// so reports stay byte-identical to the exhaustive per-cycle sweep.
    fn cycle(&mut self) -> bool {
        let now = self.now;
        let mut activity = false;

        let fills_due = self.llc.fill_due(now)
            || self
                .cores
                .iter()
                .any(|c| c.l2.fill_due(now) || c.l1d.fill_due(now) || c.l1i.fill_due(now));
        if fills_due {
            let t0 = self.phase_start();
            activity |= self.process_fills();
            Self::phase_add(&mut self.phases.fill_ns, t0);
        }
        let t0 = self.phase_start();
        if self.llc.pq_len() > 0 {
            activity |= self.drain_llc_pq();
        }
        for ci in 0..self.cores.len() {
            if self.cores[ci].l2.pq_len() > 0 {
                activity |= self.drain_l2_pq(ci);
            }
            if self.cores[ci].l1d.pq_len() > 0 {
                activity |= self.drain_l1_pq(ci);
            }
            if self.cores[ci].l1i.pq_len() > 0 {
                activity |= self.drain_l1i_pq(ci);
            }
        }
        Self::phase_add(&mut self.phases.drain_ns, t0);
        for ci in 0..self.cores.len() {
            let t0 = self.phase_start();
            let retired = self.retire(ci);
            if retired == 0 {
                self.cores[ci].stall_cycles += 1;
            } else {
                activity = true;
                self.last_retire_cycle = now;
            }
            if !self.cores[ci].pending.is_empty() {
                activity |= self.issue(ci) > 0;
            }
            Self::phase_add(&mut self.phases.issue_ns, t0);
            let t0 = self.phase_start();
            activity |= self.fetch(ci) > 0;
            Self::phase_add(&mut self.phases.decode_ns, t0);
        }
        self.run_on_cycle_hooks();
        activity
    }

    fn run_on_cycle_hooks(&mut self) {
        if !self.cycle_hooks {
            return;
        }
        let mut sink = std::mem::take(&mut self.pf_scratch);
        for ci in 0..self.cores.len() {
            self.cores[ci].l1i_pf.on_cycle(self.now, &mut sink);
            for req in sink.requests.drain(..) {
                self.enqueue_l1i_request(ci, req, Ip(0));
            }
            self.cores[ci].l1d_pf.on_cycle(self.now, &mut sink);
            for req in sink.requests.drain(..) {
                self.enqueue_l1_request(ci, req, Ip(0));
            }
            self.cores[ci].l2_pf.on_cycle(self.now, &mut sink);
            for req in sink.requests.drain(..) {
                self.enqueue_l2_request(ci, req, Ip(0));
            }
        }
        self.llc_pf.on_cycle(self.now, &mut sink);
        for req in sink.requests.drain(..) {
            self.enqueue_llc_request(req, Ip(0));
        }
        sink.dropped = 0;
        self.pf_scratch = sink;
    }

    // ------------------------------------------------------------------
    // Retire / issue / fetch
    // ------------------------------------------------------------------

    fn retire(&mut self, ci: usize) -> u32 {
        let now = self.now;
        let width = self.cfg.core.retire_width;
        let core = &mut self.cores[ci];
        let before = core.retired_total;
        // Bulk contiguous scan over the completion ring (shared by both
        // run loops; identical retirement decisions to the one-at-a-time
        // head walk, so the oracle comparison is unaffected).
        let n = core.rob.retire_ready(now, width);
        core.rob.pop_n(n);
        core.retired_total += u64::from(n);
        // Count-maintained replacements for the run loop's per-cycle
        // all-cores scans: a core crosses the warm-up threshold at most
        // once, and `finished` is set at most once.
        if before < self.cfg.warmup_instructions
            && core.retired_total >= self.cfg.warmup_instructions
        {
            self.warm_pending -= 1;
        }
        if self.warmed_up && core.finished.is_none() {
            let measured = core.retired_total - core.measure_start_instr;
            if measured >= self.cfg.sim_instructions {
                core.finished = Some(CoreStats {
                    instructions: measured,
                    cycles: now - core.measure_start_cycle,
                    stall_cycles: core.stall_cycles,
                });
                self.finished_count += 1;
            }
        }
        n
    }

    fn issue(&mut self, ci: usize) -> u32 {
        // Loads issue out of order within a small scheduler window: a
        // structurally rejected access (MSHR full downstream) does not
        // block younger, independent accesses behind it.
        const ISSUE_WINDOW: usize = 8;
        let now = self.now;
        let mut n = 0;
        let mut i = 0;
        loop {
            let core = &mut self.cores[ci];
            if i >= core.pending.len().min(ISSUE_WINDOW) {
                break;
            }
            if !core.l1d.try_take_port(now) {
                break;
            }
            let pm = core.pending[i];
            // Translate. The TLB state mutation on a retried access is
            // harmless (second lookup hits the DTLB).
            let (ppage, penalty) = core
                .tlb
                .translate(ipcp_mem::VPage::new(pm.vpage), &mut core.mapper);
            let pline = phys_line(ppage.raw(), pm.vline);
            let t = now + penalty;
            match self.resolve_l1d_demand(ci, &pm, pline, t) {
                Some(completion) => {
                    let core = &mut self.cores[ci];
                    // Stores retire without waiting for data; loads wait.
                    let c = if pm.store { now + 1 } else { completion };
                    core.rob.set_completion(pm.seq, pm.slot, c);
                    core.pending.remove(i);
                    n += 1;
                }
                None => i += 1, // structural reject: retry next cycle
            }
        }
        n
    }

    fn fetch(&mut self, ci: usize) -> u32 {
        if self.cores[ci].fetch_stall_until > self.now {
            return 0;
        }
        let width = self.cfg.core.fetch_width;
        let alu_latency = self.cfg.core.alu_latency;
        let mut n = 0;
        while n < width {
            if self.cores[ci].rob.is_full() {
                break;
            }
            let instr = self.cores[ci].next_instr();
            // Instruction fetch: touch the L1I once per new line.
            let iline = LineAddr::from_byte_addr(instr.ip.raw());
            if self.cores[ci].last_ifetch_line != Some(iline) {
                if !self.ifetch(ci, iline, instr.ip) {
                    // Port/MSHR reject: re-fetch this line next cycle. The
                    // instruction itself still dispatches (the line will be
                    // re-probed) — simpler and harmless, since traces have
                    // tiny code footprints.
                    self.cores[ci].last_ifetch_line = None;
                } else {
                    self.cores[ci].last_ifetch_line = Some(iline);
                }
            }
            let now = self.now;
            let core = &mut self.cores[ci];
            match instr.mem {
                MemOp::None => {
                    core.rob.push(now + alu_latency);
                }
                MemOp::Load(vaddr) => {
                    let (seq, slot) = core.rob.push(FILL_UNKNOWN);
                    core.pending
                        .push_back(PendingMem::new(seq, slot, instr.ip, vaddr, false));
                }
                MemOp::Store(vaddr) => {
                    let (seq, slot) = core.rob.push(FILL_UNKNOWN);
                    core.pending
                        .push_back(PendingMem::new(seq, slot, instr.ip, vaddr, true));
                }
            }
            n += 1;
            if self.cores[ci].fetch_stall_until > self.now {
                break;
            }
        }
        n
    }

    /// Column-oriented fetch (fast scheduler only): walks the look-ahead
    /// buffer's decoded columns directly instead of materializing one
    /// [`Instr`] per slot, and dispatches runs of non-memory instructions
    /// on an already-fetched instruction line as a single bulk ROB push.
    /// Dispatch decisions are identical to [`System::fetch`]: the bulk run
    /// only covers instructions the naive loop would pass straight through
    /// (same iline ⇒ no L1I probe; no memory op ⇒ no pending entry; a nop
    /// can never set the fetch stall the naive loop re-checks per slot).
    fn fetch_fast(&mut self, ci: usize) -> u32 {
        let now = self.now;
        if self.cores[ci].fetch_stall_until > now {
            return 0;
        }
        let width = self.cfg.core.fetch_width as usize;
        let alu_latency = self.cfg.core.alu_latency;
        let mut n = 0;
        while n < width {
            let core = &mut self.cores[ci];
            if core.rob.is_full() {
                break;
            }
            if core.ibuf_pos >= core.ibuf.len() {
                core.refill_batch();
            }
            let pos = core.ibuf_pos;
            let iline_raw = core.derived.ilines[pos];
            let same_iline = core.last_ifetch_line.is_some_and(|l| l.raw() == iline_raw);
            let (ips, kinds, _addrs) = core.ibuf.columns();
            if kinds[pos] == KIND_NONE && same_iline {
                // Maximal nop run on the resident line, bounded by fetch
                // width, ROB space, and the batch edge.
                let lim = pos + (width - n).min(core.rob.space()).min(core.ibuf.len() - pos);
                let mut end = pos + 1;
                while end < lim && kinds[end] == KIND_NONE && core.derived.ilines[end] == iline_raw
                {
                    end += 1;
                }
                let k = end - pos;
                core.rob.push_n(now + alu_latency, k);
                core.ibuf_pos = end;
                n += k;
                continue;
            }
            let ip = Ip(ips[pos]);
            let kind = kinds[pos];
            core.ibuf_pos = pos + 1;
            if !same_iline {
                let iline = LineAddr::new(iline_raw);
                // Fast repeat ifetch: the line's page sits in the TLB's
                // untimed both-miss memo (so its translation is
                // side-effect-free with a known frame) and the line is
                // armed in the L1I's repeat memo (so its lookup collapses
                // to the two demand counters) — the whole [`System::ifetch`]
                // reduces to one port take and a batched hit commit. Port
                // exhaustion falls through to the slow path, whose first
                // check is the same port take, for the exact reject path.
                // A non-noop L1-I prefetcher disables the memo entirely:
                // its `on_access` hook must observe every new ifetch line,
                // so both schedulers take the full `ifetch` path and the
                // hook stream is identical by construction (DESIGN.md §12).
                let core = &mut self.cores[ci];
                let fast_hit = core.l1i_pf_noop
                    && core
                        .tlb
                        .untimed_memo_frame(iline.vpage().raw())
                        .map(|frame| phys_line(frame, iline))
                        .filter(|&pline| core.l1i.repeat_memo(pline).is_some())
                        .is_some_and(|pline| {
                            if core.l1i.ports_free(now) == 0 {
                                return false;
                            }
                            core.l1i.commit_repeat_hits(pline, 1, false);
                            true
                        });
                if fast_hit {
                    self.cores[ci].last_ifetch_line = Some(iline);
                } else if !self.ifetch(ci, iline, ip) {
                    self.cores[ci].last_ifetch_line = None;
                } else {
                    self.cores[ci].last_ifetch_line = Some(iline);
                }
            }
            let core = &mut self.cores[ci];
            if kind == KIND_NONE {
                core.rob.push(now + alu_latency);
            } else {
                let (seq, slot) = core.rob.push(FILL_UNKNOWN);
                let d = &core.derived;
                core.pending.push_back(PendingMem {
                    seq,
                    slot,
                    ip,
                    store: kind != KIND_LOAD,
                    vline: LineAddr::new(d.lines[pos]),
                    vpage: d.vpages[pos],
                    decode: AddrDecode {
                        page_off: ipcp_mem::LineOffset::new(d.pageoffs[pos]),
                        region: ipcp_mem::RegionId::new(d.regions[pos]),
                        region_off: ipcp_mem::RegionOffset::new(d.pageoffs[pos] & 0x1f),
                        vpage_lsb2: (d.vpages[pos] & 3) as u8,
                        ip_key: d.ipkeys[pos],
                    },
                });
            }
            n += 1;
            if self.cores[ci].fetch_stall_until > now {
                break;
            }
        }
        n as u32
    }

    /// Instruction-line access through the L1I. Returns false on a
    /// structural reject.
    fn ifetch(&mut self, ci: usize, vline: LineAddr, ip: Ip) -> bool {
        let now = self.now;
        let core = &mut self.cores[ci];
        if !core.l1i.try_take_port(now) {
            return false;
        }
        let ppage = core.tlb.translate_untimed(vline.vpage(), &mut core.mapper);
        let pline = phys_line(ppage.raw(), vline);
        let l1i_lat = self.cores[ci].l1i.latency();
        let t = self.now;
        match self.cores[ci].l1i.demand_lookup(pline, ip, false) {
            ProbeResult::Hit {
                first_use_of_prefetch,
                pf_class,
            } => {
                self.run_l1i_prefetcher(
                    ci,
                    vline,
                    pline,
                    ip,
                    true,
                    first_use_of_prefetch,
                    pf_class,
                );
                true
            }
            ProbeResult::MshrMerge { fill_at } => {
                self.run_l1i_prefetcher(ci, vline, pline, ip, false, false, 0);
                self.cores[ci].fetch_stall_until = fill_at;
                true
            }
            ProbeResult::MshrFull => false,
            ProbeResult::Miss => {
                let Some(c2) =
                    self.resolve_l2_demand(ci, pline, ip, DemandKind::IFetch, t + l1i_lat)
                else {
                    return false;
                };
                let fill_at = c2 + FILL_FORWARD;
                let core = &mut self.cores[ci];
                core.l1i.commit_demand_miss();
                core.l1i.alloc_mshr(Mshr {
                    line: pline,
                    fill_at,
                    is_prefetch: false,
                    pf_class: 0,
                    dirty: false,
                    ip,
                });
                core.fetch_stall_until = fill_at;
                let nf = core.l1i.next_fill_raw();
                self.arm_fill(sched::comp_l1i(ci), nf);
                self.run_l1i_prefetcher(ci, vline, pline, ip, false, false, 0);
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Demand path
    // ------------------------------------------------------------------

    fn resolve_l1d_demand(
        &mut self,
        ci: usize,
        pm: &PendingMem,
        pline: LineAddr,
        t: Cycle,
    ) -> Option<Cycle> {
        let (ip, store) = (pm.ip, pm.store);
        let l1_lat = self.cores[ci].l1d.latency();
        let kind = if store {
            DemandKind::Rfo
        } else {
            DemandKind::Load
        };
        match self.cores[ci].l1d.demand_lookup(pline, ip, store) {
            ProbeResult::Hit {
                first_use_of_prefetch,
                pf_class,
            } => {
                let c = t + l1_lat;
                self.run_l1d_prefetcher(ci, pm, pline, kind, true, first_use_of_prefetch, pf_class);
                Some(c)
            }
            ProbeResult::MshrMerge { fill_at } => {
                self.run_l1d_prefetcher(ci, pm, pline, kind, false, false, 0);
                let c = fill_at.max(t + l1_lat);
                if self.debug_pf && c > t + 60 {
                    eprintln!(
                        "MERGE line {:#x} t {} fill {} wait {}",
                        pline.raw(),
                        t,
                        fill_at,
                        c - t
                    );
                }
                let stats = &mut self.cores[ci].l1d.stats;
                stats.miss_latency_sum += c - t;
                stats.merge_wait_sum += c - t;
                Some(c)
            }
            ProbeResult::MshrFull => None,
            ProbeResult::Miss => {
                let c2 = self.resolve_l2_demand(ci, pline, ip, kind, t + l1_lat)?;
                let fill_at = c2 + FILL_FORWARD;
                let core = &mut self.cores[ci];
                core.l1d.stats.miss_latency_sum += fill_at - t;
                core.l1d.commit_demand_miss();
                core.l1d.alloc_mshr(Mshr {
                    line: pline,
                    fill_at,
                    is_prefetch: false,
                    pf_class: 0,
                    dirty: store,
                    ip,
                });
                let nf = core.l1d.next_fill_raw();
                self.arm_fill(sched::comp_l1d(ci), nf);
                self.run_l1d_prefetcher(ci, pm, pline, kind, false, false, 0);
                Some(fill_at)
            }
        }
    }

    /// The hit-streak fused issue path (fast scheduler only): a maximal
    /// run of pending accesses that repeat the L1D's memoized last demand
    /// hit under the DTLB's memoized translation is committed with one
    /// batched stats/port/ROB update, then the prefetcher is trained once
    /// per access — training is observably stateful (RR-filter recency,
    /// RST touches, NL issue) even on repeated hits, so only the cache,
    /// TLB, and ROB side of the run may batch; the replay is exact,
    /// including the memoized hit's `first_use = false` / memo-class
    /// observation. Everything that falls outside a run takes the same
    /// per-entry walk as [`System::issue`] (whose `demand_lookup` and
    /// `translate` contain the single-access memo paths), so the fused
    /// loop is behavior-identical to the naive one.
    fn issue_fused(&mut self, ci: usize) -> u32 {
        const ISSUE_WINDOW: usize = 8;
        let now = self.now;
        let mut n = 0;
        // Phase 1: hit-streak runs at the head of the pending queue. The
        // run is bounded by free L1D ports (the naive loop's real limiter:
        // every issued access takes a port) and restricted to the exact
        // line of the set's memo — a hit on any *other* line would arm a
        // new memo and touch replacement state, so it ends the run.
        loop {
            let core = &mut self.cores[ci];
            if core.pending.is_empty() {
                return n;
            }
            let pm0 = core.pending[0];
            let Some(memo_frame) = core.tlb.memo_timed_frame(pm0.vpage) else {
                break;
            };
            let pline = phys_line(memo_frame, pm0.vline);
            let Some(memo_class) = core.l1d.repeat_memo(pline) else {
                break;
            };
            let free = core.l1d.ports_free(now) as usize;
            if free == 0 {
                return n;
            }
            let lim = free.min(core.pending.len());
            let vline_raw = pm0.vline.raw();
            let mut k = 0;
            let mut any_write = false;
            while k < lim && core.pending[k].vline.raw() == vline_raw {
                any_write |= core.pending[k].store;
                k += 1;
            }
            debug_assert!(k >= 1, "pending[0] matched the memo line");
            core.l1d.commit_repeat_hits(pline, k as u32, any_write);
            core.tlb.note_memo_hits(k as u64);
            // All loads in the run complete together (memoized translation
            // is penalty-free, so t = now); stores retire at now + 1 as in
            // the naive loop.
            let load_c = now + core.l1d.latency();
            for j in 0..k {
                let pm = core.pending[j];
                let c = if pm.store { now + 1 } else { load_c };
                core.rob.set_completion(pm.seq, pm.slot, c);
            }
            if !self.cores[ci].l1d_pf_noop {
                for j in 0..k {
                    let pm = self.cores[ci].pending[j];
                    let kind = if pm.store {
                        DemandKind::Rfo
                    } else {
                        DemandKind::Load
                    };
                    self.run_l1d_prefetcher(ci, &pm, pline, kind, true, false, memo_class);
                }
            }
            self.cores[ci].pending.drain(..k);
            n += k as u32;
        }
        // Phase 2: the general window, shaped exactly like the naive
        // [`System::issue`] loop but reading the precomputed line/page/
        // decode fields off the pending entry.
        let mut i = 0;
        loop {
            let core = &mut self.cores[ci];
            if i >= core.pending.len().min(ISSUE_WINDOW) {
                break;
            }
            if !core.l1d.try_take_port(now) {
                break;
            }
            let pm = core.pending[i];
            let (ppage, penalty) = core
                .tlb
                .translate(ipcp_mem::VPage::new(pm.vpage), &mut core.mapper);
            let pline = phys_line(ppage.raw(), pm.vline);
            let t = now + penalty;
            match self.resolve_l1d_demand(ci, &pm, pline, t) {
                Some(completion) => {
                    let core = &mut self.cores[ci];
                    let c = if pm.store { now + 1 } else { completion };
                    core.rob.set_completion(pm.seq, pm.slot, c);
                    core.pending.remove(i);
                    n += 1;
                }
                None => i += 1, // structural reject: retry next cycle
            }
        }
        n
    }

    fn resolve_l2_demand(
        &mut self,
        ci: usize,
        pline: LineAddr,
        ip: Ip,
        kind: DemandKind,
        t: Cycle,
    ) -> Option<Cycle> {
        let l2_lat = self.cores[ci].l2.latency();
        match self.cores[ci].l2.demand_lookup(pline, ip, false) {
            ProbeResult::Hit {
                first_use_of_prefetch,
                pf_class,
            } => {
                let c = t + l2_lat;
                self.run_l2_prefetcher_access(
                    ci,
                    pline,
                    ip,
                    kind,
                    true,
                    first_use_of_prefetch,
                    pf_class,
                );
                Some(c)
            }
            ProbeResult::MshrMerge { fill_at } => {
                self.run_l2_prefetcher_access(ci, pline, ip, kind, false, false, 0);
                Some(fill_at.max(t + l2_lat))
            }
            ProbeResult::MshrFull => None,
            ProbeResult::Miss => {
                let c3 = self.resolve_llc_demand(ci, pline, ip, kind, t + l2_lat)?;
                let fill_at = c3 + FILL_FORWARD;
                let core = &mut self.cores[ci];
                core.l2.commit_demand_miss();
                core.l2.alloc_mshr(Mshr {
                    line: pline,
                    fill_at,
                    is_prefetch: false,
                    pf_class: 0,
                    dirty: false,
                    ip,
                });
                let nf = core.l2.next_fill_raw();
                self.arm_fill(sched::comp_l2(ci), nf);
                self.run_l2_prefetcher_access(ci, pline, ip, kind, false, false, 0);
                Some(fill_at)
            }
        }
    }

    fn resolve_llc_demand(
        &mut self,
        ci: usize,
        pline: LineAddr,
        ip: Ip,
        kind: DemandKind,
        t: Cycle,
    ) -> Option<Cycle> {
        let llc_lat = self.llc.latency();
        match self.llc.demand_lookup(pline, ip, false) {
            ProbeResult::Hit {
                first_use_of_prefetch,
                pf_class,
            } => {
                let c = t + llc_lat;
                self.run_llc_prefetcher_access(
                    ci,
                    pline,
                    ip,
                    kind,
                    true,
                    first_use_of_prefetch,
                    pf_class,
                );
                Some(c)
            }
            ProbeResult::MshrMerge { fill_at } => {
                self.run_llc_prefetcher_access(ci, pline, ip, kind, false, false, 0);
                Some(fill_at.max(t + llc_lat))
            }
            ProbeResult::MshrFull => None,
            ProbeResult::Miss => {
                let done = self.dram.schedule_read(t + llc_lat, pline);
                self.llc.commit_demand_miss();
                self.llc.alloc_mshr(Mshr {
                    line: pline,
                    fill_at: done,
                    is_prefetch: false,
                    pf_class: 0,
                    dirty: false,
                    ip,
                });
                let nf = self.llc.next_fill_raw();
                self.arm_fill(sched::COMP_LLC, nf);
                self.run_llc_prefetcher_access(ci, pline, ip, kind, false, false, 0);
                Some(done)
            }
        }
    }

    // ------------------------------------------------------------------
    // Prefetch path
    // ------------------------------------------------------------------

    fn drain_l1_pq(&mut self, ci: usize) -> bool {
        let mut any = false;
        for _ in 0..PF_DRAIN_PER_CYCLE {
            let Some(qp) = self.cores[ci].l1d.peek_prefetch().copied() else {
                break;
            };
            match qp.req.fill {
                FillLevel::L1 => match self.cores[ci].l1d.prefetch_probe(qp.pline) {
                    ProbeResult::Hit { .. } | ProbeResult::MshrMerge { .. } => {
                        self.cores[ci].l1d.pop_prefetch();
                        self.cores[ci].l1d.stats.pf_dropped_present += 1;
                        any = true;
                    }
                    ProbeResult::MshrFull => break,
                    ProbeResult::Miss => {
                        self.cores[ci].l1d.pop_prefetch();
                        match self.resolve_l2_prefetch(ci, &qp, self.now + PF_ISSUE_LATENCY) {
                            Some(c) => {
                                if self.debug_pf {
                                    eprintln!(
                                        "PF line {:#x} now {} fill {}",
                                        qp.pline.raw(),
                                        self.now,
                                        c + FILL_FORWARD
                                    );
                                }
                                let core = &mut self.cores[ci];
                                core.l1d.alloc_mshr(Mshr {
                                    line: qp.pline,
                                    fill_at: c + FILL_FORWARD,
                                    is_prefetch: true,
                                    pf_class: qp.req.pf_class,
                                    dirty: false,
                                    ip: qp.ip,
                                });
                                let nf = core.l1d.next_fill_raw();
                                self.arm_fill(sched::comp_l1d(ci), nf);
                            }
                            None => {
                                self.cores[ci].l1d.stats.pf_dropped_mshr_full += 1;
                            }
                        }
                        any = true;
                    }
                },
                FillLevel::L2 => {
                    self.cores[ci].l1d.pop_prefetch();
                    if self
                        .resolve_l2_prefetch(ci, &qp, self.now + PF_ISSUE_LATENCY)
                        .is_none()
                    {
                        self.cores[ci].l1d.stats.pf_dropped_mshr_full += 1;
                    }
                    any = true;
                }
                FillLevel::Llc => {
                    self.cores[ci].l1d.pop_prefetch();
                    if self
                        .resolve_llc_prefetch(
                            qp.pline,
                            qp.req.pf_class,
                            qp.ip,
                            self.now + PF_ISSUE_LATENCY,
                        )
                        .is_none()
                    {
                        self.cores[ci].l1d.stats.pf_dropped_mshr_full += 1;
                    }
                    any = true;
                }
            }
        }
        any
    }

    /// Drains the L1I prefetch queue: the I-side twin of
    /// [`System::drain_l1_pq`], sharing the same L2/LLC resolve machinery
    /// (and therefore the same L2 MSHR/PQ pressure and metadata-arrival
    /// path) as the data side — the composition the frontend figures
    /// measure.
    fn drain_l1i_pq(&mut self, ci: usize) -> bool {
        let mut any = false;
        for _ in 0..PF_DRAIN_PER_CYCLE {
            let Some(qp) = self.cores[ci].l1i.peek_prefetch().copied() else {
                break;
            };
            match qp.req.fill {
                FillLevel::L1 => match self.cores[ci].l1i.prefetch_probe(qp.pline) {
                    ProbeResult::Hit { .. } | ProbeResult::MshrMerge { .. } => {
                        self.cores[ci].l1i.pop_prefetch();
                        self.cores[ci].l1i.stats.pf_dropped_present += 1;
                        any = true;
                    }
                    ProbeResult::MshrFull => break,
                    ProbeResult::Miss => {
                        self.cores[ci].l1i.pop_prefetch();
                        match self.resolve_l2_prefetch(ci, &qp, self.now + PF_ISSUE_LATENCY) {
                            Some(c) => {
                                let core = &mut self.cores[ci];
                                core.l1i.alloc_mshr(Mshr {
                                    line: qp.pline,
                                    fill_at: c + FILL_FORWARD,
                                    is_prefetch: true,
                                    pf_class: qp.req.pf_class,
                                    dirty: false,
                                    ip: qp.ip,
                                });
                                let nf = core.l1i.next_fill_raw();
                                self.arm_fill(sched::comp_l1i(ci), nf);
                            }
                            None => {
                                self.cores[ci].l1i.stats.pf_dropped_mshr_full += 1;
                            }
                        }
                        any = true;
                    }
                },
                FillLevel::L2 => {
                    self.cores[ci].l1i.pop_prefetch();
                    if self
                        .resolve_l2_prefetch(ci, &qp, self.now + PF_ISSUE_LATENCY)
                        .is_none()
                    {
                        self.cores[ci].l1i.stats.pf_dropped_mshr_full += 1;
                    }
                    any = true;
                }
                FillLevel::Llc => {
                    self.cores[ci].l1i.pop_prefetch();
                    if self
                        .resolve_llc_prefetch(
                            qp.pline,
                            qp.req.pf_class,
                            qp.ip,
                            self.now + PF_ISSUE_LATENCY,
                        )
                        .is_none()
                    {
                        self.cores[ci].l1i.stats.pf_dropped_mshr_full += 1;
                    }
                    any = true;
                }
            }
        }
        any
    }

    /// Resolves a prefetch (originating at the L1) at the L2: delivers the
    /// metadata to the L2 prefetcher, then brings the block to (at least)
    /// the L2. Returns the cycle the data is available at the L2.
    fn resolve_l2_prefetch(&mut self, ci: usize, qp: &QueuedPrefetch, t: Cycle) -> Option<Cycle> {
        self.run_l2_prefetcher_arrival(ci, qp);
        let l2_lat = self.cores[ci].l2.latency();
        match self.cores[ci].l2.prefetch_probe(qp.pline) {
            ProbeResult::Hit { .. } => Some(t + l2_lat),
            ProbeResult::MshrMerge { fill_at } => Some(fill_at),
            ProbeResult::MshrFull => None,
            ProbeResult::Miss => {
                let c3 = self.resolve_llc_prefetch(qp.pline, qp.req.pf_class, qp.ip, t + l2_lat)?;
                let fill_at = c3 + FILL_FORWARD;
                self.cores[ci].l2.alloc_mshr(Mshr {
                    line: qp.pline,
                    fill_at,
                    is_prefetch: true,
                    pf_class: qp.req.pf_class,
                    dirty: false,
                    ip: qp.ip,
                });
                let nf = self.cores[ci].l2.next_fill_raw();
                self.arm_fill(sched::comp_l2(ci), nf);
                Some(fill_at)
            }
        }
    }

    fn resolve_llc_prefetch(
        &mut self,
        pline: LineAddr,
        pf_class: u8,
        ip: Ip,
        t: Cycle,
    ) -> Option<Cycle> {
        let llc_lat = self.llc.latency();
        match self.llc.prefetch_probe(pline) {
            ProbeResult::Hit { .. } => Some(t + llc_lat),
            ProbeResult::MshrMerge { fill_at } => Some(fill_at),
            ProbeResult::MshrFull => None,
            ProbeResult::Miss => {
                let done = self.dram.schedule_read(t + llc_lat, pline);
                self.llc.alloc_mshr(Mshr {
                    line: pline,
                    fill_at: done,
                    is_prefetch: true,
                    pf_class,
                    dirty: false,
                    ip,
                });
                let nf = self.llc.next_fill_raw();
                self.arm_fill(sched::COMP_LLC, nf);
                Some(done)
            }
        }
    }

    fn drain_l2_pq(&mut self, ci: usize) -> bool {
        let mut any = false;
        for _ in 0..PF_DRAIN_PER_CYCLE {
            let Some(qp) = self.cores[ci].l2.peek_prefetch().copied() else {
                break;
            };
            match qp.req.fill {
                FillLevel::Llc => {
                    self.cores[ci].l2.pop_prefetch();
                    if self
                        .resolve_llc_prefetch(
                            qp.pline,
                            qp.req.pf_class,
                            qp.ip,
                            self.now + PF_ISSUE_LATENCY,
                        )
                        .is_none()
                    {
                        self.cores[ci].l2.stats.pf_dropped_mshr_full += 1;
                    }
                    any = true;
                }
                // L1 targets are clamped to L2 here: an L2 prefetcher cannot
                // fill upward.
                FillLevel::L1 | FillLevel::L2 => match self.cores[ci].l2.prefetch_probe(qp.pline) {
                    ProbeResult::Hit { .. } | ProbeResult::MshrMerge { .. } => {
                        self.cores[ci].l2.pop_prefetch();
                        self.cores[ci].l2.stats.pf_dropped_present += 1;
                        any = true;
                    }
                    ProbeResult::MshrFull => break,
                    ProbeResult::Miss => {
                        self.cores[ci].l2.pop_prefetch();
                        match self.resolve_llc_prefetch(
                            qp.pline,
                            qp.req.pf_class,
                            qp.ip,
                            self.now + PF_ISSUE_LATENCY,
                        ) {
                            Some(c) => {
                                self.cores[ci].l2.alloc_mshr(Mshr {
                                    line: qp.pline,
                                    fill_at: c + FILL_FORWARD,
                                    is_prefetch: true,
                                    pf_class: qp.req.pf_class,
                                    dirty: false,
                                    ip: qp.ip,
                                });
                                let nf = self.cores[ci].l2.next_fill_raw();
                                self.arm_fill(sched::comp_l2(ci), nf);
                            }
                            None => {
                                self.cores[ci].l2.stats.pf_dropped_mshr_full += 1;
                            }
                        }
                        any = true;
                    }
                },
            }
        }
        any
    }

    fn drain_llc_pq(&mut self) -> bool {
        let mut any = false;
        for _ in 0..PF_DRAIN_PER_CYCLE {
            let Some(qp) = self.llc.peek_prefetch().copied() else {
                break;
            };
            match self.llc.prefetch_probe(qp.pline) {
                ProbeResult::Hit { .. } | ProbeResult::MshrMerge { .. } => {
                    self.llc.pop_prefetch();
                    self.llc.stats.pf_dropped_present += 1;
                    any = true;
                }
                ProbeResult::MshrFull => break,
                ProbeResult::Miss => {
                    self.llc.pop_prefetch();
                    let done = self
                        .dram
                        .schedule_read(self.now + PF_ISSUE_LATENCY + self.llc.latency(), qp.pline);
                    self.llc.alloc_mshr(Mshr {
                        line: qp.pline,
                        fill_at: done,
                        is_prefetch: true,
                        pf_class: qp.req.pf_class,
                        dirty: false,
                        ip: qp.ip,
                    });
                    let nf = self.llc.next_fill_raw();
                    self.arm_fill(sched::COMP_LLC, nf);
                    any = true;
                }
            }
        }
        any
    }

    // ------------------------------------------------------------------
    // Prefetcher hooks
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn run_l1d_prefetcher(
        &mut self,
        ci: usize,
        pm: &PendingMem,
        pline: LineAddr,
        kind: DemandKind,
        hit: bool,
        first_use_of_prefetch: bool,
        hit_pf_class: u8,
    ) {
        if self.cores[ci].l1d_pf_noop {
            return;
        }
        let t0 = self.phase_start();
        let (vline, ip) = (pm.vline, pm.ip);
        let dram_utilization = self.dram.utilization();
        let core = &mut self.cores[ci];
        let info = AccessInfo {
            cycle: self.now,
            ip,
            vline,
            pline,
            kind,
            hit,
            first_use_of_prefetch,
            hit_pf_class,
            instructions: core.retired_total,
            demand_misses: core.l1d.lifetime_misses(),
            dram_utilization,
            decode: pm.decode,
        };
        let mut sink = std::mem::take(&mut self.pf_scratch);
        self.cores[ci].l1d_pf.on_access(&info, &mut sink);
        // Same-page translation memo for the burst: every call site sits
        // directly after the trigger's timed translate, so the trigger's
        // page is DTLB-resident with the newest stamp in its set and is the
        // timed memo's page. An untimed translate of that same page would
        // re-stamp the already-newest way and leave the timed memo alone —
        // no observable TLB state changes — so candidates on the trigger
        // page (the common case: L1 classes never cross a page) reuse the
        // trigger's frame directly. Cross-page or physical requests take
        // the full path.
        let trigger_vpage = vline.vpage();
        let trigger_frame = pline.ppage().raw();
        let memo_ok = !self.cfg.no_fastpath;
        for req in sink.requests.drain(..) {
            if memo_ok && req.virtual_addr && req.line.vpage() == trigger_vpage {
                self.enqueue_l1_translated(ci, req, ip, phys_line(trigger_frame, req.line));
            } else {
                self.enqueue_l1_request(ci, req, ip);
            }
        }
        sink.dropped = 0;
        self.pf_scratch = sink;
        Self::phase_add(&mut self.phases.train_ns, t0);
    }

    /// The L1-I twin of [`System::run_l1d_prefetcher`], invoked from every
    /// [`System::ifetch`] outcome. Only reachable with a non-noop I-side
    /// prefetcher attached, in which case the fast repeat-ifetch memo is
    /// disabled and both schedulers deliver the identical access stream.
    #[allow(clippy::too_many_arguments)]
    fn run_l1i_prefetcher(
        &mut self,
        ci: usize,
        vline: LineAddr,
        pline: LineAddr,
        ip: Ip,
        hit: bool,
        first_use_of_prefetch: bool,
        hit_pf_class: u8,
    ) {
        if self.cores[ci].l1i_pf_noop {
            return;
        }
        let t0 = self.phase_start();
        let dram_utilization = self.dram.utilization();
        let core = &mut self.cores[ci];
        let info = AccessInfo {
            cycle: self.now,
            ip,
            vline,
            pline,
            kind: DemandKind::IFetch,
            hit,
            first_use_of_prefetch,
            hit_pf_class,
            instructions: core.retired_total,
            demand_misses: core.l1i.lifetime_misses(),
            dram_utilization,
            decode: AddrDecode::of(ip, vline),
        };
        let mut sink = std::mem::take(&mut self.pf_scratch);
        self.cores[ci].l1i_pf.on_access(&info, &mut sink);
        for req in sink.requests.drain(..) {
            self.enqueue_l1i_request(ci, req, ip);
        }
        sink.dropped = 0;
        self.pf_scratch = sink;
        Self::phase_add(&mut self.phases.train_ns, t0);
    }

    #[allow(clippy::too_many_arguments)]
    fn run_l2_prefetcher_access(
        &mut self,
        ci: usize,
        pline: LineAddr,
        ip: Ip,
        kind: DemandKind,
        hit: bool,
        first_use_of_prefetch: bool,
        hit_pf_class: u8,
    ) {
        if self.cores[ci].l2_pf_noop {
            return;
        }
        let t0 = self.phase_start();
        let dram_utilization = self.dram.utilization();
        let core = &mut self.cores[ci];
        let info = AccessInfo {
            cycle: self.now,
            ip,
            vline: pline,
            pline,
            kind,
            hit,
            first_use_of_prefetch,
            hit_pf_class,
            instructions: core.retired_total,
            demand_misses: core.l2.lifetime_misses(),
            dram_utilization,
            decode: AddrDecode::of(ip, pline),
        };
        let mut sink = std::mem::take(&mut self.pf_scratch);
        self.cores[ci].l2_pf.on_access(&info, &mut sink);
        for req in sink.requests.drain(..) {
            self.enqueue_l2_request(ci, req, ip);
        }
        sink.dropped = 0;
        self.pf_scratch = sink;
        Self::phase_add(&mut self.phases.train_ns, t0);
    }

    fn run_l2_prefetcher_arrival(&mut self, ci: usize, qp: &QueuedPrefetch) {
        if self.cores[ci].l2_pf_noop {
            return;
        }
        let t0 = self.phase_start();
        let core = &mut self.cores[ci];
        let arrival = MetadataArrival {
            cycle: self.now,
            ip: qp.ip,
            pline: qp.pline,
            meta: qp.req.meta,
            instructions: core.retired_total,
            demand_misses: core.l2.lifetime_misses(),
        };
        let mut sink = std::mem::take(&mut self.pf_scratch);
        self.cores[ci]
            .l2_pf
            .on_prefetch_arrival(&arrival, &mut sink);
        for req in sink.requests.drain(..) {
            self.enqueue_l2_request(ci, req, qp.ip);
        }
        sink.dropped = 0;
        self.pf_scratch = sink;
        Self::phase_add(&mut self.phases.train_ns, t0);
    }

    #[allow(clippy::too_many_arguments)]
    fn run_llc_prefetcher_access(
        &mut self,
        _ci: usize,
        pline: LineAddr,
        ip: Ip,
        kind: DemandKind,
        hit: bool,
        first_use_of_prefetch: bool,
        hit_pf_class: u8,
    ) {
        if self.llc_pf_noop {
            return;
        }
        let t0 = self.phase_start();
        let info = AccessInfo {
            cycle: self.now,
            ip,
            vline: pline,
            pline,
            kind,
            hit,
            first_use_of_prefetch,
            hit_pf_class,
            instructions: 0,
            demand_misses: self.llc.lifetime_misses(),
            dram_utilization: self.dram.utilization(),
            decode: AddrDecode::of(ip, pline),
        };
        let mut sink = std::mem::take(&mut self.pf_scratch);
        self.llc_pf.on_access(&info, &mut sink);
        for req in sink.requests.drain(..) {
            self.enqueue_llc_request(req, ip);
        }
        sink.dropped = 0;
        self.pf_scratch = sink;
        Self::phase_add(&mut self.phases.train_ns, t0);
    }

    fn enqueue_l1_request(&mut self, ci: usize, req: PrefetchRequest, ip: Ip) {
        let core = &mut self.cores[ci];
        let pline = if req.virtual_addr {
            let vpage = req.line.vpage();
            let ppage = core.tlb.translate_untimed(vpage, &mut core.mapper);
            phys_line(ppage.raw(), req.line)
        } else {
            req.line
        };
        self.enqueue_l1_translated(ci, req, ip, pline);
    }

    fn enqueue_l1_translated(&mut self, ci: usize, req: PrefetchRequest, ip: Ip, pline: LineAddr) {
        let core = &mut self.cores[ci];
        // A prefetch whose target is already resident (or in flight) at its
        // own fill level is dropped at enqueue so it does not consume PQ
        // slots or drain bandwidth.
        if req.fill == FillLevel::L1
            && !matches!(
                core.l1d.prefetch_probe(pline),
                ProbeResult::Miss | ProbeResult::MshrFull
            )
        {
            core.l1d.stats.pf_dropped_present += 1;
            return;
        }
        core.l1d.enqueue_prefetch(QueuedPrefetch { req, pline, ip });
        self.mark_pq(sched::pq_l1d(ci));
    }

    /// Enqueues an I-side prefetch request into the L1I's PQ. Virtual
    /// targets translate through the untimed ITLB path (code addresses are
    /// virtual, like every L1-fill request); already-resident targets are
    /// dropped at enqueue, mirroring [`System::enqueue_l1_translated`].
    fn enqueue_l1i_request(&mut self, ci: usize, req: PrefetchRequest, ip: Ip) {
        let core = &mut self.cores[ci];
        let pline = if req.virtual_addr {
            let vpage = req.line.vpage();
            let ppage = core.tlb.translate_untimed(vpage, &mut core.mapper);
            phys_line(ppage.raw(), req.line)
        } else {
            req.line
        };
        if req.fill == FillLevel::L1
            && !matches!(
                core.l1i.prefetch_probe(pline),
                ProbeResult::Miss | ProbeResult::MshrFull
            )
        {
            core.l1i.stats.pf_dropped_present += 1;
            return;
        }
        core.l1i.enqueue_prefetch(QueuedPrefetch { req, pline, ip });
        self.mark_pq(sched::pq_l1i(ci));
    }

    fn enqueue_l2_request(&mut self, ci: usize, req: PrefetchRequest, ip: Ip) {
        let core = &mut self.cores[ci];
        let pline = if req.virtual_addr {
            let vpage = req.line.vpage();
            let ppage = core.tlb.translate_untimed(vpage, &mut core.mapper);
            phys_line(ppage.raw(), req.line)
        } else {
            req.line
        };
        // L2 prefetchers fill at most to the L2.
        let req = if req.fill == FillLevel::L1 {
            req.with_fill(FillLevel::L2)
        } else {
            req
        };
        if req.fill == FillLevel::L2
            && !matches!(
                core.l2.prefetch_probe(pline),
                ProbeResult::Miss | ProbeResult::MshrFull
            )
        {
            core.l2.stats.pf_dropped_present += 1;
            return;
        }
        core.l2.enqueue_prefetch(QueuedPrefetch { req, pline, ip });
        self.mark_pq(sched::pq_l2(ci));
    }

    fn enqueue_llc_request(&mut self, req: PrefetchRequest, ip: Ip) {
        let req = req.with_fill(FillLevel::Llc);
        self.llc.enqueue_prefetch(QueuedPrefetch {
            req,
            pline: req.line,
            ip,
        });
        self.mark_pq(sched::PQ_LLC);
    }

    // ------------------------------------------------------------------
    // Fills and write-backs
    // ------------------------------------------------------------------

    fn process_fills(&mut self) -> bool {
        let mut any = false;
        // LLC first, then private levels (order is immaterial: fill times
        // were staggered when the MSHRs were allocated).
        any |= self.fill_llc();
        for ci in 0..self.cores.len() {
            any |= self.fill_l2(ci);
            any |= self.fill_l1d(ci);
            any |= self.fill_l1i(ci);
        }
        any
    }

    fn fill_llc(&mut self) -> bool {
        let now = self.now;
        let mut any = false;
        while let Some(m) = self.llc.pop_ready_fill(now) {
            any = true;
            let evicted = self
                .llc
                .install(m.line, m.ip, m.is_prefetch, m.pf_class, m.dirty);
            if let Some(ev) = evicted {
                if ev.dirty {
                    self.llc.stats.writebacks += 1;
                    self.dram.schedule_write(now, ev.line);
                }
            }
            self.llc_pf.on_fill(&fill_info(now, &m, evicted));
        }
        any
    }

    fn fill_l2(&mut self, ci: usize) -> bool {
        let now = self.now;
        let mut any = false;
        while let Some(m) = self.cores[ci].l2.pop_ready_fill(now) {
            any = true;
            let evicted =
                self.cores[ci]
                    .l2
                    .install(m.line, m.ip, m.is_prefetch, m.pf_class, m.dirty);
            if let Some(ev) = evicted {
                if ev.dirty {
                    self.cores[ci].l2.stats.writebacks += 1;
                    if !self.llc.writeback_hit(ev.line) {
                        self.dram.schedule_write(now, ev.line);
                    }
                }
            }
            let info = fill_info(now, &m, evicted);
            self.cores[ci].l2_pf.on_fill(&info);
        }
        any
    }

    fn fill_l1d(&mut self, ci: usize) -> bool {
        let now = self.now;
        let mut any = false;
        while let Some(m) = self.cores[ci].l1d.pop_ready_fill(now) {
            any = true;
            let evicted =
                self.cores[ci]
                    .l1d
                    .install(m.line, m.ip, m.is_prefetch, m.pf_class, m.dirty);
            if let Some(ev) = evicted {
                if ev.dirty {
                    self.cores[ci].l1d.stats.writebacks += 1;
                    if !self.cores[ci].l2.writeback_hit(ev.line) && !self.llc.writeback_hit(ev.line)
                    {
                        self.dram.schedule_write(now, ev.line);
                    }
                }
            }
            let info = fill_info(now, &m, evicted);
            self.cores[ci].l1d_pf.on_fill(&info);
        }
        any
    }

    fn fill_l1i(&mut self, ci: usize) -> bool {
        let now = self.now;
        let mut any = false;
        while let Some(m) = self.cores[ci].l1i.pop_ready_fill(now) {
            any = true;
            let evicted =
                self.cores[ci]
                    .l1i
                    .install(m.line, m.ip, m.is_prefetch, m.pf_class, m.dirty);
            // Instruction lines are never written, so evictions can't be
            // dirty and there is no writeback leg.
            debug_assert!(evicted.is_none_or(|ev| !ev.dirty));
            if !self.cores[ci].l1i_pf_noop {
                let info = fill_info(now, &m, evicted);
                self.cores[ci].l1i_pf.on_fill(&info);
            }
        }
        any
    }

    /// Direct access to the DRAM stats mid-run (used in tests).
    pub fn dram_utilization(&self) -> f64 {
        self.dram.utilization()
    }
}

fn fill_info(now: Cycle, m: &Mshr, evicted: Option<crate::cache::Evicted>) -> FillInfo {
    FillInfo {
        cycle: now,
        pline: m.line,
        was_prefetch: m.is_prefetch,
        pf_class: m.pf_class,
        evicted: evicted.map(|e| e.line),
        evicted_unused_prefetch: evicted.is_some_and(|e| e.unused_prefetch),
    }
}

/// Boolean observability knob (`IPCP_SCHED_STATS`, `IPCP_PHASE_STATS`)
/// with the env catalogue's semantics (empty, `0`, `false`, `off`, `no`
/// mean disabled), read once at construction like `IPCP_DEBUG_PF`.
fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| {
        !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "" | "0" | "false" | "off" | "no"
        )
    })
}

/// Combines a physical frame number with the in-page line offset of `vline`.
fn phys_line(ppage: u64, vline: LineAddr) -> LineAddr {
    LineAddr::new((ppage << (PAGE_SHIFT - LINE_SHIFT)) | (vline.raw() & (LINES_PER_PAGE - 1)))
}

// Parallel experiment harnesses fan whole simulations across worker
// threads, so these types must stay `Send` (the `Prefetcher` trait carries
// the `Send` bound; `CoreSetup`'s trace is `Arc<dyn TraceSource + Send +
// Sync>`). Compile-time check so a regression fails the build, not a
// downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>();
    assert_send::<CoreSetup>();
    assert_send::<Box<dyn Prefetcher>>();
    assert_send::<SimReport>();
};

/// Convenience: runs a single-core simulation (no I-side prefetcher).
pub fn run_single(
    cfg: SimConfig,
    trace: Arc<dyn TraceSource + Send + Sync>,
    l1d_prefetcher: Box<dyn Prefetcher>,
    l2_prefetcher: Box<dyn Prefetcher>,
    llc_prefetcher: Box<dyn Prefetcher>,
) -> SimReport {
    run_single_with_l1i(
        cfg,
        trace,
        Box::new(crate::prefetch::NoPrefetcher),
        l1d_prefetcher,
        l2_prefetcher,
        llc_prefetcher,
    )
}

/// Convenience: runs a single-core simulation with an L1-I prefetcher in
/// the frontend slot.
pub fn run_single_with_l1i(
    cfg: SimConfig,
    trace: Arc<dyn TraceSource + Send + Sync>,
    l1i_prefetcher: Box<dyn Prefetcher>,
    l1d_prefetcher: Box<dyn Prefetcher>,
    l2_prefetcher: Box<dyn Prefetcher>,
    llc_prefetcher: Box<dyn Prefetcher>,
) -> SimReport {
    let mut cfg = cfg;
    cfg.cores = 1;
    let mut sys = System::new(
        cfg,
        vec![CoreSetup::new(trace, l1d_prefetcher, l2_prefetcher)
            .with_l1i_prefetcher(l1i_prefetcher)],
        llc_prefetcher,
    );
    sys.run()
}

/// Weighted speedup of a multi-core run against per-core alone IPCs
/// (Section VI's metric): `Σ IPC_together(i) / IPC_alone(i)`.
pub fn weighted_speedup(together: &SimReport, alone_ipcs: &[f64]) -> f64 {
    assert_eq!(
        together.cores.len(),
        alone_ipcs.len(),
        "core-count mismatch"
    );
    together
        .cores
        .iter()
        .zip(alone_ipcs)
        .map(|(c, &alone)| {
            if alone <= 0.0 {
                0.0
            } else {
                c.core.ipc() / alone
            }
        })
        .sum()
}

#[allow(unused_imports)]
#[allow(clippy::items_after_test_module)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::NoPrefetcher;
    use ipcp_trace::VecTrace;

    fn quick_cfg() -> SimConfig {
        SimConfig::default().with_instructions(2_000, 10_000)
    }

    fn seq_trace(lines: u64, stride: u64) -> Arc<VecTrace> {
        // One load per 4 instructions, striding through memory.
        let mut v = Vec::new();
        let mut i = 0u64;
        let mut addr = 0x100_0000u64;
        while v.len() < lines as usize * 4 {
            v.push(Instr::load(0x40_0000 + (i % 8) * 4, addr));
            v.push(Instr::nop(0x40_0100));
            v.push(Instr::nop(0x40_0104));
            v.push(Instr::nop(0x40_0108));
            addr += stride * 64;
            i += 1;
        }
        Arc::new(VecTrace::new("seq", v))
    }

    #[test]
    fn runs_to_completion_and_counts() {
        let report = run_single(
            quick_cfg(),
            seq_trace(20_000, 1),
            Box::new(NoPrefetcher),
            Box::new(NoPrefetcher),
            Box::new(NoPrefetcher),
        );
        assert_eq!(report.cores.len(), 1);
        let c = &report.cores[0];
        assert!(c.core.instructions >= 10_000);
        assert!(c.core.cycles > 0);
        assert!(c.core.ipc() > 0.0);
        // A pure streaming load with no prefetching misses a lot.
        assert!(
            c.l1d.demand_misses > 1000,
            "misses: {}",
            c.l1d.demand_misses
        );
        assert!(report.dram.reads > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            run_single(
                quick_cfg(),
                seq_trace(20_000, 1),
                Box::new(NoPrefetcher),
                Box::new(NoPrefetcher),
                Box::new(NoPrefetcher),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_working_set_hits_cache() {
        // 16 KB working set fits L1D after the first pass.
        let mut v = Vec::new();
        for rep in 0..200 {
            for l in 0..256u64 {
                v.push(Instr::load(0x40_0000, 0x50_0000 + l * 64));
                if rep % 4 == 0 {
                    v.push(Instr::nop(0x40_0004));
                }
            }
        }
        let report = run_single(
            quick_cfg(),
            Arc::new(VecTrace::new("resident", v)),
            Box::new(NoPrefetcher),
            Box::new(NoPrefetcher),
            Box::new(NoPrefetcher),
        );
        let c = &report.cores[0];
        let hit_rate = c.l1d.demand_hits as f64 / c.l1d.demand_accesses as f64;
        assert!(hit_rate > 0.95, "hit rate {hit_rate}");
    }

    struct NextLinesL1(i64);
    impl Prefetcher for NextLinesL1 {
        fn name(&self) -> &'static str {
            "nl-test"
        }
        fn on_access(&mut self, info: &AccessInfo, sink: &mut dyn crate::prefetch::PrefetchSink) {
            for k in 1..=self.0 {
                if let Some(next) = info.vline.offset_within_page(k) {
                    sink.prefetch(PrefetchRequest::l1(next));
                }
            }
        }
    }

    /// A latency-bound (not bandwidth-bound) stream: ~100 instructions per
    /// missing load, so prefetching has headroom on the DRAM bus.
    fn sparse_stream_trace() -> Arc<VecTrace> {
        let mut v = Vec::new();
        let mut addr = 0x100_0000u64;
        for _ in 0..2_000u64 {
            v.push(Instr::load(0x40_0000, addr));
            for k in 0..99u64 {
                v.push(Instr::nop(0x40_0100 + (k % 16) * 4));
            }
            addr += 64;
        }
        Arc::new(VecTrace::new("sparse-stream", v))
    }

    #[test]
    fn next_line_prefetcher_improves_latency_bound_streaming() {
        let base = run_single(
            quick_cfg(),
            sparse_stream_trace(),
            Box::new(NoPrefetcher),
            Box::new(NoPrefetcher),
            Box::new(NoPrefetcher),
        );
        let pf = run_single(
            quick_cfg(),
            sparse_stream_trace(),
            Box::new(NextLinesL1(4)),
            Box::new(NoPrefetcher),
            Box::new(NoPrefetcher),
        );
        assert!(
            pf.ipc() > base.ipc() * 1.05,
            "NL-4 should speed up a latency-bound stream: {} vs {}",
            pf.ipc(),
            base.ipc()
        );
        assert!(pf.cores[0].l1d.pf_issued > 0);
        // Prefetches may land as timely fills or as late MSHR merges; both
        // count as useful.
        assert!(pf.cores[0].l1d.useful_prefetch_hits > 0);
    }

    #[test]
    fn multicore_runs_and_reports_per_core() {
        let mut cfg = SimConfig::multicore(2).with_instructions(1_000, 5_000);
        cfg.llc.size_bytes = 1024 * 1024; // keep the test fast
        let mk = |_: u32| {
            CoreSetup::new(
                seq_trace(20_000, 1),
                Box::new(NoPrefetcher),
                Box::new(NoPrefetcher),
            )
        };
        let mut sys = System::new(cfg, vec![mk(0), mk(1)], Box::new(NoPrefetcher));
        let r = sys.run();
        assert_eq!(r.cores.len(), 2);
        for c in &r.cores {
            assert!(c.core.instructions >= 5_000);
            assert!(c.core.ipc() > 0.0);
        }
    }

    #[test]
    fn sampler_series_is_deterministic() {
        let run = || {
            run_single(
                quick_cfg().with_sample_interval(1_000),
                seq_trace(20_000, 1),
                Box::new(NextLinesL1(4)),
                Box::new(NoPrefetcher),
                Box::new(NoPrefetcher),
            )
        };
        let a = run();
        let b = run();
        assert!(
            a.samples.len() >= 9,
            "10k measured instructions at interval 1k should yield ~10 samples, got {}",
            a.samples.len()
        );
        assert_eq!(a.samples, b.samples);
        assert_eq!(a, b);
        // Samples sit on the measured-phase instruction clock and carry
        // interval activity.
        assert!(a.samples[0].instructions >= 1_000);
        assert!(a
            .samples
            .windows(2)
            .all(|w| w[0].instructions < w[1].instructions));
        assert!(a.samples.iter().any(|s| s.ipc > 0.0));
        assert!(a.samples.iter().any(|s| s.l1d_mpki > 0.0));
    }

    #[test]
    fn disabled_sampler_leaves_report_identical() {
        let run = |interval: Option<u64>| {
            let mut cfg = quick_cfg();
            cfg.sample_interval = interval;
            run_single(
                cfg,
                seq_trace(20_000, 1),
                Box::new(NextLinesL1(4)),
                Box::new(NoPrefetcher),
                Box::new(NoPrefetcher),
            )
        };
        let off = run(None);
        assert!(off.samples.is_empty());
        // Sampling is pure observation: every counter matches the disabled
        // run; only the embedded series differs.
        let mut on = run(Some(2_000));
        assert!(!on.samples.is_empty());
        on.samples = Default::default();
        assert_eq!(on, off);
    }

    #[test]
    fn weighted_speedup_math() {
        let mut r = SimReport::default();
        r.cores.push(CoreReport {
            trace: "a".into(),
            core: CoreStats {
                instructions: 100,
                cycles: 100,
                stall_cycles: 0,
            },
            ..Default::default()
        });
        r.cores.push(CoreReport {
            trace: "b".into(),
            core: CoreStats {
                instructions: 100,
                cycles: 200,
                stall_cycles: 0,
            },
            ..Default::default()
        });
        let ws = weighted_speedup(&r, &[1.0, 1.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }
}
