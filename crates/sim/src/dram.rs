//! DRAM: a bank/row-buffer timing model with a shared per-channel data bus.
//!
//! Requests are scheduled first-come-first-served per bank with open-row
//! policy: a row-buffer hit costs tCAS, a conflict costs tRP + tRCD + tCAS.
//! Every transfer then serializes on the channel's data bus for
//! `burst_cycles` (20 cycles ⇒ 12.8 GB/s/channel at 4 GHz, matching the
//! paper's "12GBps" DPC-3 configuration).

use ipcp_mem::LineAddr;

use crate::config::{Cycle, DramConfig};
use crate::stats::DramStats;

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
}

#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: Cycle,
}

/// The DRAM subsystem (all channels plus utilization tracking).
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    /// Aggregate statistics.
    pub stats: DramStats,
    window_start: Cycle,
    window_busy: Cycle,
    utilization: f64,
}

const UTIL_WINDOW: Cycle = 16_384;

impl Dram {
    /// Builds the DRAM model from configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); cfg.banks_per_channel as usize],
                bus_free_at: 0,
            })
            .collect();
        let stats = DramStats {
            channels: cfg.channels,
            ..DramStats::default()
        };
        Self {
            cfg,
            channels,
            stats,
            window_start: 0,
            window_busy: 0,
            utilization: 0.0,
        }
    }

    fn route(&self, line: LineAddr) -> (usize, usize, u64) {
        // Row:bank:column mapping with a 2 KB (32-line) row: consecutive
        // lines share a row, 2 KB chunks interleave across channels and
        // then banks. Streams therefore see ~31/32 row-buffer hits, as on
        // real controllers, while independent streams land in different
        // banks.
        let chunk = line.raw() / 32;
        let ch = (chunk % u64::from(self.cfg.channels)) as usize;
        let after_ch = chunk / u64::from(self.cfg.channels);
        let bank = (after_ch % u64::from(self.cfg.banks_per_channel)) as usize;
        let row =
            (after_ch / u64::from(self.cfg.banks_per_channel)) % u64::from(self.cfg.rows_per_bank);
        (ch, bank, row)
    }

    /// Advances the utilization window using *bus* time (the cycle the burst
    /// finished), so back-to-back bursts report high utilization even when
    /// the requester stalls between them.
    fn advance_window(&mut self, bus_time: Cycle, busy: Cycle) {
        if bus_time.saturating_sub(self.window_start) >= UTIL_WINDOW {
            let span = bus_time - self.window_start;
            self.utilization = (self.window_busy as f64 / span as f64).min(1.0);
            self.window_start = bus_time;
            self.window_busy = 0;
        }
        self.window_busy += busy;
    }

    /// Schedules a read for `line` arriving at the controller at `now`;
    /// returns the cycle the critical 64 B burst completes.
    pub fn schedule_read(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        self.schedule(now, line, true)
    }

    /// Schedules a write-back; the caller does not wait for completion, but
    /// the burst occupies bank and bus like a read.
    pub fn schedule_write(&mut self, now: Cycle, line: LineAddr) {
        let _ = self.schedule(now, line, false);
    }

    fn schedule(&mut self, now: Cycle, line: LineAddr, is_read: bool) -> Cycle {
        let (ch_idx, bank_idx, row) = self.route(line);
        let cfg = &self.cfg;
        let ch = &mut self.channels[ch_idx];
        let bank = &mut ch.banks[bank_idx];

        let start = now.max(bank.ready_at);
        // CAS is *latency*, not occupancy: back-to-back column accesses to
        // an open row pipeline at tCCD (≈ one burst), so a stream reading a
        // row is bus-limited, not tCAS-serialized. A row conflict occupies
        // the bank for precharge + activate before the next command.
        let (access_lat, bank_busy) = if bank.open_row == Some(row) {
            if is_read {
                self.stats.row_hits += 1;
            }
            (cfg.t_cas, cfg.burst_cycles)
        } else {
            if is_read {
                self.stats.row_misses += 1;
            }
            bank.open_row = Some(row);
            (
                cfg.t_rp + cfg.t_rcd + cfg.t_cas,
                cfg.t_rp + cfg.t_rcd + cfg.burst_cycles,
            )
        };
        let data_ready = start + access_lat;
        let bus_start = data_ready.max(ch.bus_free_at);
        let done = bus_start + cfg.burst_cycles;
        ch.bus_free_at = done;
        bank.ready_at = start + bank_busy;
        self.stats.bus_busy_cycles += cfg.burst_cycles;
        if is_read {
            self.stats.reads += 1;
        } else {
            self.stats.writes += 1;
        }
        let busy = self.cfg.burst_cycles;
        self.advance_window(done, busy);
        done
    }

    /// Recent data-bus utilization (0..=1), updated every ~16 K cycles.
    /// This is DSPatch's bandwidth signal.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// The configured peak bandwidth (GB/s at 4 GHz).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.cfg.peak_bandwidth_gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let mut d = dram();
        let line = LineAddr::new(0);
        let t0 = d.schedule_read(0, line);
        // Same row (lines 0..32 share bank 0 row 0 on 1 channel, 8 banks:
        // line 8 maps to bank 0). Wait for the bank to be ready again.
        let same_row_line = LineAddr::new(8);
        let t1 = d.schedule_read(t0, same_row_line);
        let hit_latency = t1 - t0;
        // A far line in the same bank but a different row conflicts.
        let other_row_line = LineAddr::new(8 * 32 * 100);
        let t2 = d.schedule_read(t1, other_row_line);
        let miss_latency = t2 - t1;
        assert!(
            miss_latency > hit_latency,
            "{miss_latency} vs {hit_latency}"
        );
        assert_eq!(d.stats.row_hits, 1);
        assert_eq!(d.stats.row_misses, 2);
    }

    #[test]
    fn bus_serializes_parallel_banks() {
        let mut d = dram();
        // Two requests to different banks at the same time still share the
        // data bus: completions differ by at least one burst.
        let a = d.schedule_read(0, LineAddr::new(0)); // bank 0
        let b = d.schedule_read(0, LineAddr::new(1)); // bank 1
        assert!(
            b >= a + DramConfig::default().burst_cycles
                || a >= b + DramConfig::default().burst_cycles
        );
    }

    #[test]
    fn throughput_bounded_by_bus() {
        let mut d = dram();
        let n = 1000u64;
        let mut last = 0;
        for i in 0..n {
            last = d.schedule_read(0, LineAddr::new(i));
        }
        // n bursts of 20 cycles each can't finish faster than 20n.
        assert!(last >= n * DramConfig::default().burst_cycles);
        assert_eq!(d.stats.reads, n);
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = dram();
        d.schedule_write(0, LineAddr::new(7));
        assert_eq!(d.stats.writes, 1);
        assert_eq!(d.stats.reads, 0);
        assert_eq!(d.stats.traffic_bytes(), 64);
    }

    #[test]
    fn utilization_rises_under_load() {
        let mut d = dram();
        // Offered load far above service rate: the bus saturates.
        for i in 0..20_000u64 {
            let _ = d.schedule_read(0, LineAddr::new(i * 97));
        }
        assert!(d.utilization() > 0.8, "util = {}", d.utilization());
    }

    #[test]
    fn utilization_low_when_serialized_and_sparse() {
        let mut d = dram();
        let mut now = 0;
        for i in 0..2_000u64 {
            now = d.schedule_read(now + 500, LineAddr::new(i * 97));
        }
        assert!(d.utilization() < 0.2, "util = {}", d.utilization());
    }

    #[test]
    fn channels_increase_throughput() {
        let one = {
            let mut d = Dram::new(DramConfig::default());
            let mut last = 0;
            for i in 0..500u64 {
                last = d.schedule_read(0, LineAddr::new(i));
            }
            last
        };
        let two = {
            let mut d = Dram::new(DramConfig {
                channels: 2,
                ..DramConfig::default()
            });
            let mut last = 0;
            for i in 0..500u64 {
                last = last.max(d.schedule_read(0, LineAddr::new(i)));
            }
            last
        };
        assert!(two < one, "two channels ({two}) should beat one ({one})");
    }
}
