//! Runtime invariant layer: wrappers that validate every prefetch request
//! against the model invariants the paper's hardware budget implies.
//!
//! The checks are the `ipcp-check` audit subsystem's first pillar (the
//! other two are the `no_fastpath` differential oracle in [`crate::config`]
//! and the trace fuzzer in `ipcp-workloads`):
//!
//! - a prefetch never crosses its trigger's 4 KB page (IPCP trains on
//!   virtual addresses and stops at page bounds — Section IV);
//! - the class tag fits the 2-bit encoding {NL, CS, CPLX, GS};
//! - L1→L2 metadata fits 9 bits: 2-bit class, 7-bit signed stride in
//!   `-63..=63`;
//! - the same target is never issued twice from one trigger (the RR
//!   filter's probe-and-insert makes an intra-trigger duplicate
//!   impossible);
//! - per-trigger, per-class issue counts never exceed a configured degree
//!   bound (the throttle can only lower degrees, so the config defaults
//!   are a hard ceiling).
//!
//! [`CheckedPrefetcher`] wraps any [`Prefetcher`] and applies the checks to
//! everything it emits; violations are *recorded* (bounded), not panicked,
//! so a sweep reports every broken invariant instead of dying on the
//! first. The wrapper forwards every behavioral hook unchanged, so a
//! checked run is byte-identical to an unchecked one.

use std::sync::{Arc, Mutex};

use ipcp_mem::LineAddr;

use crate::config::Cycle;
use crate::prefetch::{
    AccessInfo, FillInfo, MetadataArrival, PrefetchRequest, PrefetchSink, Prefetcher,
};

/// Cap on the recorded violation list: enough to diagnose, bounded so a
/// systematically broken prefetcher cannot eat the heap.
const MAX_RECORDED: usize = 64;

/// Shared tally of one checked prefetcher's audit results.
#[derive(Debug, Default)]
pub struct CheckState {
    /// Requests validated.
    pub checked: u64,
    /// Total violations observed (recorded or not).
    pub violations: u64,
    /// First [`MAX_RECORDED`] violation descriptions.
    pub recorded: Vec<String>,
}

/// Handle onto a [`CheckedPrefetcher`]'s results, usable after the
/// prefetcher has been moved into a simulation.
#[derive(Debug, Clone, Default)]
pub struct CheckHandle {
    state: Arc<Mutex<CheckState>>,
}

impl CheckHandle {
    /// Requests validated so far.
    pub fn checked(&self) -> u64 {
        self.state.lock().unwrap().checked
    }

    /// Violations observed so far.
    pub fn violations(&self) -> u64 {
        self.state.lock().unwrap().violations
    }

    /// The recorded violation descriptions (first [`MAX_RECORDED`]).
    pub fn recorded(&self) -> Vec<String> {
        self.state.lock().unwrap().recorded.clone()
    }

    /// Panics with every recorded violation if any was observed.
    ///
    /// # Panics
    ///
    /// Panics when at least one invariant violation was recorded.
    pub fn assert_clean(&self, context: &str) {
        let s = self.state.lock().unwrap();
        assert!(
            s.violations == 0,
            "{context}: {} invariant violation(s) over {} checked prefetches:\n{}",
            s.violations,
            s.checked,
            s.recorded.join("\n")
        );
    }

    fn note(&self, violation: Option<String>) {
        let mut s = self.state.lock().unwrap();
        s.checked += 1;
        if let Some(v) = violation {
            s.violations += 1;
            if s.recorded.len() < MAX_RECORDED {
                s.recorded.push(v);
            }
        }
    }
}

/// Validates one request against a trigger's virtual/physical lines.
/// Returns a description of the first violated invariant, if any.
fn validate(
    req: &PrefetchRequest,
    trigger_vline: LineAddr,
    trigger_pline: LineAddr,
) -> Option<String> {
    if req.pf_class > 3 {
        return Some(format!(
            "class bits {:#x} exceed the 2-bit encoding (req {req:?})",
            req.pf_class
        ));
    }
    if let Some(m) = req.meta {
        if m.class > 3 {
            return Some(format!(
                "metadata class {:#x} exceeds 2 bits (req {req:?})",
                m.class
            ));
        }
        if !(-63..=63).contains(&m.stride) {
            return Some(format!(
                "metadata stride {} exceeds 7 signed bits (req {req:?})",
                m.stride
            ));
        }
    }
    let trigger = if req.virtual_addr {
        trigger_vline
    } else {
        trigger_pline
    };
    if req.line.vpage() != trigger.vpage() {
        return Some(format!(
            "prefetch {:#x} crosses the 4 KB page of trigger {:#x} (req {req:?})",
            req.line.raw(),
            trigger.raw()
        ));
    }
    None
}

/// Sink wrapper applying the per-request checks relative to one trigger.
struct CheckSink<'a> {
    inner: &'a mut dyn PrefetchSink,
    handle: &'a CheckHandle,
    trigger_vline: LineAddr,
    trigger_pline: LineAddr,
    /// Targets issued from this trigger (intra-trigger dedup check).
    issued: Vec<LineAddr>,
    /// Per-class issue counts from this trigger (degree-bound check).
    per_class: [u32; 4],
    /// Per-class degree ceiling; `None` disables the bound.
    degree_limit: Option<[u8; 4]>,
}

impl PrefetchSink for CheckSink<'_> {
    fn prefetch(&mut self, req: PrefetchRequest) -> bool {
        let mut violation = validate(&req, self.trigger_vline, self.trigger_pline);
        if violation.is_none() && self.issued.contains(&req.line) {
            violation = Some(format!(
                "target {:#x} issued twice from one trigger — RR dedup broken (req {req:?})",
                req.line.raw()
            ));
        }
        let class = (req.pf_class & 0b11) as usize;
        self.per_class[class] += 1;
        if violation.is_none() {
            if let Some(limit) = self.degree_limit {
                if self.per_class[class] > u32::from(limit[class]) {
                    violation = Some(format!(
                        "class {class} issued {} > degree bound {} from one trigger (req {req:?})",
                        self.per_class[class], limit[class]
                    ));
                }
            }
        }
        self.handle.note(violation);
        self.issued.push(req.line);
        self.inner.prefetch(req)
    }
}

/// A [`Prefetcher`] wrapper that audits everything the inner prefetcher
/// emits. Behavior-transparent: every request is forwarded unchanged.
pub struct CheckedPrefetcher<P> {
    inner: P,
    handle: CheckHandle,
    degree_limit: Option<[u8; 4]>,
}

impl<P: Prefetcher> CheckedPrefetcher<P> {
    /// Wraps `inner` with the per-request checks.
    pub fn new(inner: P) -> Self {
        Self {
            inner,
            handle: CheckHandle::default(),
            degree_limit: None,
        }
    }

    /// Additionally bounds per-trigger, per-class issue counts (NL, CS,
    /// CPLX, GS order). Pass each class's *configured default* degree —
    /// throttling only ever lowers the effective degree below it.
    #[must_use]
    pub fn with_degree_limit(mut self, limit: [u8; 4]) -> Self {
        self.degree_limit = Some(limit);
        self
    }

    /// A handle that stays valid after the prefetcher moves into a run.
    pub fn handle(&self) -> CheckHandle {
        self.handle.clone()
    }
}

impl<P: Prefetcher> Prefetcher for CheckedPrefetcher<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_access(&mut self, info: &AccessInfo, sink: &mut dyn PrefetchSink) {
        // Split the borrow: the sink wrapper holds `&self.handle` fields by
        // value/clone, so build it from locals.
        let handle = self.handle.clone();
        let mut s = CheckSink {
            inner: sink,
            handle: &handle,
            trigger_vline: info.vline,
            trigger_pline: info.pline,
            issued: Vec::new(),
            per_class: [0; 4],
            degree_limit: self.degree_limit,
        };
        self.inner.on_access(info, &mut s);
    }

    fn on_fill(&mut self, fill: &FillInfo) {
        self.inner.on_fill(fill);
    }

    fn on_prefetch_arrival(&mut self, arrival: &MetadataArrival, sink: &mut dyn PrefetchSink) {
        let handle = self.handle.clone();
        let mut s = CheckSink {
            inner: sink,
            handle: &handle,
            trigger_vline: arrival.pline,
            trigger_pline: arrival.pline,
            issued: Vec::new(),
            per_class: [0; 4],
            degree_limit: self.degree_limit,
        };
        self.inner.on_prefetch_arrival(arrival, &mut s);
    }

    fn on_cycle(&mut self, cycle: Cycle, sink: &mut dyn PrefetchSink) {
        // Cycle hooks have no trigger address; forward unchecked (no
        // in-tree prefetcher emits page-relative requests from on_cycle).
        self.inner.on_cycle(cycle, sink);
    }

    fn uses_cycle_hook(&self) -> bool {
        self.inner.uses_cycle_hook()
    }

    fn is_noop(&self) -> bool {
        self.inner.is_noop()
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }

    fn filter_drops_by_class(&self) -> [u64; 4] {
        self.inner.filter_drops_by_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::{test_access, PrefetchMeta, VecSink};

    /// Emits whatever requests it was built with, relative to nothing.
    struct Emitter(Vec<PrefetchRequest>);
    impl Prefetcher for Emitter {
        fn name(&self) -> &'static str {
            "emitter"
        }
        fn on_access(&mut self, _info: &AccessInfo, sink: &mut dyn PrefetchSink) {
            for r in &self.0 {
                sink.prefetch(*r);
            }
        }
    }

    fn drive(reqs: Vec<PrefetchRequest>, vline: u64) -> CheckHandle {
        let mut p = CheckedPrefetcher::new(Emitter(reqs));
        let h = p.handle();
        let mut sink = VecSink::new();
        p.on_access(&test_access(0x400, vline, false), &mut sink);
        h
    }

    #[test]
    fn clean_requests_pass() {
        let h = drive(
            vec![
                PrefetchRequest::l1(LineAddr::new(0x1001)).with_class(1),
                PrefetchRequest::l1(LineAddr::new(0x1002))
                    .with_class(3)
                    .with_meta(PrefetchMeta {
                        class: 3,
                        stride: -1,
                    }),
            ],
            0x1000,
        );
        assert_eq!(h.checked(), 2);
        assert_eq!(h.violations(), 0);
        h.assert_clean("clean");
    }

    #[test]
    fn page_cross_is_flagged() {
        // Page = 64 lines; 0x103f and 0x1040 are different pages.
        let h = drive(vec![PrefetchRequest::l1(LineAddr::new(0x1040))], 0x103f);
        assert_eq!(h.violations(), 1);
        assert!(h.recorded()[0].contains("crosses the 4 KB page"));
    }

    #[test]
    fn oversized_stride_is_flagged() {
        let h = drive(
            vec![
                PrefetchRequest::l1(LineAddr::new(0x1001)).with_meta(PrefetchMeta {
                    class: 1,
                    stride: 64,
                }),
            ],
            0x1000,
        );
        assert_eq!(h.violations(), 1);
        assert!(h.recorded()[0].contains("stride 64"));
    }

    #[test]
    fn intra_trigger_duplicate_is_flagged() {
        let r = PrefetchRequest::l1(LineAddr::new(0x1003));
        let h = drive(vec![r, r], 0x1000);
        assert_eq!(h.violations(), 1);
        assert!(h.recorded()[0].contains("issued twice"));
    }

    #[test]
    fn degree_bound_is_enforced() {
        let reqs: Vec<_> = (1..=4)
            .map(|k| PrefetchRequest::l1(LineAddr::new(0x1000 + k)).with_class(1))
            .collect();
        let mut p = CheckedPrefetcher::new(Emitter(reqs)).with_degree_limit([1, 3, 3, 6]);
        let h = p.handle();
        let mut sink = VecSink::new();
        p.on_access(&test_access(0x400, 0x1000, false), &mut sink);
        assert_eq!(h.violations(), 1, "4th CS from one trigger exceeds 3");
        assert!(h.recorded()[0].contains("degree bound"));
    }

    #[test]
    fn wrapper_is_transparent() {
        let reqs = vec![PrefetchRequest::l1(LineAddr::new(0x1001)).with_class(2)];
        let mut p = CheckedPrefetcher::new(Emitter(reqs.clone()));
        let mut sink = VecSink::new();
        p.on_access(&test_access(0x400, 0x1000, false), &mut sink);
        assert_eq!(sink.requests, reqs, "requests forwarded unchanged");
        assert_eq!(p.name(), "emitter");
        assert!(!p.is_noop());
    }
}
