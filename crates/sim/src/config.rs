//! Simulation configuration: the knobs of Table II plus the sensitivity-study
//! sweeps of Section VI-C.

/// Clock cycle count type used throughout the simulator.
pub type Cycle = u64;

/// Configuration for one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable level name (`"L1D"`, `"L2"`, ...).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access (hit) latency in cycles.
    pub latency: Cycle,
    /// Miss-status-holding-register entries.
    pub mshr_entries: u32,
    /// Prefetch-queue entries (FIFO; drops when full).
    pub pq_entries: u32,
    /// Demand accesses accepted per cycle.
    pub ports: u32,
    /// Replacement policy for this level.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Number of sets implied by size, line size, and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not an exact power-of-two set count.
    pub fn sets(&self) -> u64 {
        self.sets_with_scale(1)
    }

    /// Number of sets with capacity multiplied by `scale` (the LLC grows
    /// with core count per Table II), without cloning the config.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not an exact power-of-two set count.
    pub fn sets_with_scale(&self, scale: u32) -> u64 {
        let sets = self.size_bytes * u64::from(scale) / ipcp_mem::LINE_BYTES / u64::from(self.ways);
        assert!(
            sets.is_power_of_two(),
            "{}: set count {sets} must be a power of two",
            self.name
        );
        sets
    }
}

/// Replacement-policy selector (Section VI-C sensitivity study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementKind {
    /// Least-recently-used (ChampSim default).
    #[default]
    Lru,
    /// Static re-reference interval prediction (2-bit SRRIP).
    Srrip,
    /// Dynamic RRIP with set dueling.
    Drrip,
    /// Signature-based hit prediction (SHiP-lite).
    Ship,
    /// Deterministic pseudo-random victim selection.
    Random,
}

/// Core model parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Fixed execute latency of non-memory instructions, cycles.
    pub alu_latency: Cycle,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            rob_entries: 256,
            fetch_width: 4,
            retire_width: 4,
            alu_latency: 1,
        }
    }
}

/// TLB parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// DTLB entries (fully modeled, set-associative).
    pub dtlb_entries: u32,
    /// DTLB associativity.
    pub dtlb_ways: u32,
    /// Shared L2 TLB entries.
    pub stlb_entries: u32,
    /// STLB associativity.
    pub stlb_ways: u32,
    /// Extra cycles on a DTLB miss that hits the STLB.
    pub stlb_latency: Cycle,
    /// Extra cycles for a full page walk.
    pub walk_latency: Cycle,
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self {
            dtlb_entries: 64,
            dtlb_ways: 4,
            stlb_entries: 1536,
            stlb_ways: 12,
            stlb_latency: 8,
            walk_latency: 200,
        }
    }
}

/// DRAM / memory-controller parameters.
///
/// Defaults model single-channel DDR4-1600 at a 4 GHz core: a 64 B burst
/// occupies the channel for 20 core cycles (12.8 GB/s), and tRP = tRCD =
/// tCAS = 55 core cycles (13.75 ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels (1 for single-core runs, 2 for multi-core,
    /// per Table II).
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Rows per bank (for row-buffer hit modeling).
    pub rows_per_bank: u32,
    /// Column-access latency (row-buffer hit), core cycles.
    pub t_cas: Cycle,
    /// Row-precharge latency, core cycles.
    pub t_rp: Cycle,
    /// Row-activate latency, core cycles.
    pub t_rcd: Cycle,
    /// Core cycles the data bus is occupied by one 64 B burst.
    /// 20 cycles ⇒ 12.8 GB/s per channel at 4 GHz.
    pub burst_cycles: Cycle,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 1,
            banks_per_channel: 8,
            rows_per_bank: 65_536,
            t_cas: 55,
            t_rp: 55,
            t_rcd: 55,
            burst_cycles: 20,
        }
    }
}

impl DramConfig {
    /// Peak data bandwidth in GB/s assuming a 4 GHz core clock.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        let bytes_per_cycle = f64::from(self.channels) * 64.0 / self.burst_cycles as f64;
        bytes_per_cycle * 4.0 // 4 G cycles/s
    }

    /// Scales the per-burst bus occupancy so that peak bandwidth becomes
    /// `gbps` (used by the Section VI-C bandwidth sensitivity study).
    #[must_use]
    pub fn with_bandwidth_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        let cycles = (f64::from(self.channels) * 64.0 * 4.0 / gbps).round() as u64;
        self.burst_cycles = cycles.max(1);
        self
    }
}

/// Full system configuration (Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of cores.
    pub cores: u32,
    /// Core parameters.
    pub core: CoreConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache. `size_bytes` here is *per core*; the
    /// simulator multiplies by `cores`, as do the MSHR/PQ entries
    /// (Table II: "PQ: 32×#cores, MSHR: 64×#cores").
    pub llc: CacheConfig,
    /// TLB parameters.
    pub tlb: TlbConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Warm-up instructions per core (stats reset afterwards).
    pub warmup_instructions: u64,
    /// Measured instructions per core.
    pub sim_instructions: u64,
    /// Seed for the virtual-memory page mapper.
    pub vmem_seed: u64,
    /// Interval-sampler period in retired instructions (core 0's measured
    /// count). `None` (the default) disables sampling entirely; the report
    /// then carries no time-series and matches pre-sampler output exactly.
    pub sample_interval: Option<u64>,
    /// Differential-oracle mode: disable every "exact-behavior" fast path
    /// (cache repeat-hit memo, way predictor, devirtualized replacement
    /// dispatch, TLB memos) and run the naive reference paths instead. A
    /// `no_fastpath` run must produce a byte-identical [`crate::SimReport`]
    /// to the optimized run — `ipcp_check` and the CI `audit` job compare
    /// the two to *prove* the fast paths are behavior-neutral rather than
    /// trusting golden fingerprints. Off by default (zero overhead).
    pub no_fastpath: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cores: 1,
            core: CoreConfig::default(),
            l1i: CacheConfig {
                name: "L1I",
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 3,
                mshr_entries: 8,
                pq_entries: 8,
                ports: 4,
                replacement: ReplacementKind::Lru,
            },
            l1d: CacheConfig {
                name: "L1D",
                size_bytes: 48 * 1024,
                ways: 12,
                latency: 5,
                mshr_entries: 16,
                pq_entries: 8,
                ports: 2,
                replacement: ReplacementKind::Lru,
            },
            l2: CacheConfig {
                name: "L2",
                size_bytes: 512 * 1024,
                ways: 8,
                latency: 10,
                mshr_entries: 32,
                pq_entries: 16,
                ports: 2,
                replacement: ReplacementKind::Lru,
            },
            llc: CacheConfig {
                name: "LLC",
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                latency: 20,
                mshr_entries: 64,
                pq_entries: 32,
                ports: 4,
                replacement: ReplacementKind::Lru,
            },
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            warmup_instructions: 200_000,
            sim_instructions: 1_000_000,
            vmem_seed: 0x1bc9,
            sample_interval: None,
            no_fastpath: false,
        }
    }
}

impl SimConfig {
    /// A multi-core configuration with `cores` cores: LLC capacity and
    /// MSHR/PQ scale with the core count, and DRAM gets two channels
    /// (Table II).
    #[must_use]
    pub fn multicore(cores: u32) -> Self {
        let mut cfg = Self {
            cores,
            ..Self::default()
        };
        if cores > 1 {
            cfg.dram.channels = 2;
        }
        cfg
    }

    /// Sets warm-up and measured instruction counts.
    #[must_use]
    pub fn with_instructions(mut self, warmup: u64, sim: u64) -> Self {
        self.warmup_instructions = warmup;
        self.sim_instructions = sim;
        self
    }

    /// Sets the replacement policy of the LLC (Section VI-C).
    #[must_use]
    pub fn with_llc_replacement(mut self, kind: ReplacementKind) -> Self {
        self.llc.replacement = kind;
        self
    }

    /// Enables differential-oracle mode: every fast path runs its naive
    /// reference implementation instead (see the `no_fastpath` field).
    #[must_use]
    pub fn without_fastpaths(mut self) -> Self {
        self.no_fastpath = true;
        self
    }

    /// Enables the interval sampler: one time-series point every `interval`
    /// retired instructions.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    #[must_use]
    pub fn with_sample_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "sample interval must be positive");
        self.sample_interval = Some(interval);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_table2() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.l1d.sets(), 64); // 48KB / 64B / 12
        assert_eq!(cfg.l1i.sets(), 64); // 32KB / 64B / 8
        assert_eq!(cfg.l2.sets(), 1024); // 512KB / 64B / 8
        assert_eq!(cfg.llc.sets(), 2048); // 2MB / 64B / 16
        assert_eq!(cfg.core.rob_entries, 256);
        assert_eq!(cfg.l1d.mshr_entries, 16);
        assert_eq!(cfg.l1d.pq_entries, 8);
    }

    #[test]
    fn dram_default_bandwidth_is_12_8() {
        let d = DramConfig::default();
        assert!((d.peak_bandwidth_gbps() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn dram_bandwidth_override() {
        let d = DramConfig::default().with_bandwidth_gbps(3.2);
        assert!((d.peak_bandwidth_gbps() - 3.2).abs() < 0.2);
        let d = DramConfig {
            channels: 2,
            ..DramConfig::default()
        }
        .with_bandwidth_gbps(25.0);
        assert!((d.peak_bandwidth_gbps() - 25.0).abs() < 1.5);
    }

    #[test]
    fn multicore_config_scales() {
        let cfg = SimConfig::multicore(4);
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.dram.channels, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let mut cfg = SimConfig::default();
        cfg.l1d.size_bytes = 40 * 1024; // 40KB/64B/12 -> not a power of two
        #[allow(clippy::field_reassign_with_default)]
        let _ = cfg.l1d.sets();
    }
}
