//! Virtual memory: a deterministic, demand-allocated vpage→ppage mapper.
//!
//! ChampSim assigns physical frames to virtual pages on first touch with a
//! randomized allocator. We reproduce that with a seeded 20-bit Feistel
//! permutation over a 4 GB physical space: allocation order is deterministic
//! for a given seed, frames never collide, and the frame numbers are well
//! scattered so DRAM bank/row and cache-set indexing see realistic entropy.

use std::collections::HashMap;

use ipcp_mem::{PPage, VPage};

const FRAME_BITS: u32 = 20; // 2^20 4 KB frames = 4 GB
const HALF_BITS: u32 = FRAME_BITS / 2;
const HALF_MASK: u64 = (1 << HALF_BITS) - 1;

/// Deterministic page mapper. Frames are handed out on first touch in a
/// seeded pseudo-random (but bijective) order.
#[derive(Debug, Clone)]
pub struct PageMapper {
    seed: u64,
    next: u64,
    map: HashMap<u64, PPage>,
}

impl PageMapper {
    /// Creates a mapper with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            next: 0,
            // Pre-sized for typical workload footprints so the demand path
            // never stalls on an incremental rehash. Lookups only — the
            // map's iteration order is never observed, so capacity cannot
            // affect results.
            map: HashMap::with_capacity(1 << 14),
        }
    }

    /// Translates a virtual page, allocating a frame on first touch.
    ///
    /// # Panics
    ///
    /// Panics if more than 2^20 distinct pages are touched (the simulated
    /// machine has 4 GB of DRAM; workloads here touch far less).
    pub fn translate(&mut self, vpage: VPage) -> PPage {
        if let Some(&p) = self.map.get(&vpage.raw()) {
            return p;
        }
        assert!(
            self.next < (1 << FRAME_BITS),
            "out of physical frames (4 GB exhausted)"
        );
        let frame = feistel_permute(self.next, self.seed);
        self.next += 1;
        let p = PPage::new(frame);
        self.map.insert(vpage.raw(), p);
        p
    }

    /// Number of distinct pages touched so far.
    pub fn pages_touched(&self) -> usize {
        self.map.len()
    }
}

/// A 4-round Feistel network over [`FRAME_BITS`] bits: a seeded bijection on
/// frame numbers.
fn feistel_permute(x: u64, seed: u64) -> u64 {
    let mut left = (x >> HALF_BITS) & HALF_MASK;
    let mut right = x & HALF_MASK;
    for round in 0..4u64 {
        let f = round_fn(
            right,
            seed.wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let new_left = right;
        right = (left ^ f) & HALF_MASK;
        left = new_left;
    }
    (left << HALF_BITS) | right
}

fn round_fn(x: u64, key: u64) -> u64 {
    let mut z = x.wrapping_add(key).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_translation() {
        let mut m = PageMapper::new(7);
        let a = m.translate(VPage::new(100));
        let b = m.translate(VPage::new(200));
        assert_ne!(a, b);
        assert_eq!(m.translate(VPage::new(100)), a);
        assert_eq!(m.pages_touched(), 2);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut m1 = PageMapper::new(42);
        let mut m2 = PageMapper::new(42);
        for v in [5u64, 99, 3, 1 << 30] {
            assert_eq!(m1.translate(VPage::new(v)), m2.translate(VPage::new(v)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut m1 = PageMapper::new(1);
        let mut m2 = PageMapper::new(2);
        let same = (0..64)
            .filter(|&v| m1.translate(VPage::new(v)) == m2.translate(VPage::new(v)))
            .count();
        assert!(
            same < 8,
            "seeded mappings should mostly differ ({same}/64 equal)"
        );
    }

    #[test]
    fn feistel_is_bijective_on_prefix() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            let y = feistel_permute(x, 0xdead);
            assert!(y < (1 << FRAME_BITS));
            assert!(seen.insert(y), "collision at {x}");
        }
    }

    // Property tests require the external `proptest` crate (see the
    // `proptest` feature in Cargo.toml).
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn frames_stay_in_range(x in 0u64..(1 << FRAME_BITS), seed: u64) {
                prop_assert!(feistel_permute(x, seed) < (1 << FRAME_BITS));
            }

            #[test]
            fn distinct_inputs_distinct_outputs(a in 0u64..(1 << FRAME_BITS), b in 0u64..(1 << FRAME_BITS), seed: u64) {
                prop_assume!(a != b);
                prop_assert_ne!(feistel_permute(a, seed), feistel_permute(b, seed));
            }
        }
    }
}
