//! Counters and reports: everything the paper's figures are computed from.

use std::fmt;

/// Number of prefetch-class slots tracked per cache line (2 class bits per
/// line in the paper's Table I ⇒ 4 classes).
pub const PF_CLASSES: usize = 4;

/// Per-cache-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand (load + RFO) accesses.
    pub demand_accesses: u64,
    /// Demand hits.
    pub demand_hits: u64,
    /// Demand misses (MSHR merges with an in-flight prefetch count as
    /// misses here but are also recorded in `late_prefetch_hits`).
    pub demand_misses: u64,
    /// Demand misses that merged into an in-flight *prefetch* MSHR
    /// ("late" prefetches: issued, not yet filled).
    pub late_prefetch_hits: u64,
    /// Demand hits whose line was brought in by a prefetch and had not been
    /// used before (prefetch usefulness, the paper's accuracy numerator).
    pub useful_prefetch_hits: u64,
    /// `useful_prefetch_hits` broken down by the 2-bit prefetch class.
    pub useful_by_class: [u64; PF_CLASSES],
    /// Prefetch requests accepted into the prefetch queue.
    pub pf_issued: u64,
    /// Prefetch requests dropped because the PQ was full.
    pub pf_dropped_pq_full: u64,
    /// Prefetch requests dropped at PQ drain because the line was already
    /// present or already in flight.
    pub pf_dropped_present: u64,
    /// Prefetch requests dropped because no MSHR was available.
    pub pf_dropped_mshr_full: u64,
    /// Prefetch fills into this level.
    pub pf_fills: u64,
    /// `pf_fills` broken down by class.
    pub fills_by_class: [u64; PF_CLASSES],
    /// Prefetched lines evicted without ever being demanded
    /// (over-predictions, Fig. 11).
    pub pf_useless_evicted: u64,
    /// Prefetch candidates the attached prefetcher itself filtered before
    /// issuing, per class (NL, CS, CPLX, GS order) — IPCP's RR filter.
    /// Attribution for fig11-style overprediction analysis: a candidate
    /// dropped here never reached the PQ, so it appears in no other
    /// counter.
    pub rr_drops_by_class: [u64; PF_CLASSES],
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
    /// Demand accesses rejected because the MSHR was full (retried).
    pub mshr_full_rejects: u64,
    /// Sum of demand-miss service latencies (issue → data), cycles.
    /// Divide by `demand_misses` for the average.
    pub miss_latency_sum: u64,
    /// Sum of residual waits for demands that merged into an in-flight
    /// MSHR (how late the in-flight fill was relative to the demand).
    pub merge_wait_sum: u64,
}

impl CacheStats {
    /// Prefetch accuracy: useful prefetch hits over prefetches that landed
    /// (fills plus in-flight prefetches a demand merged into — the latter
    /// convert to demand fills and are both useful and "arrived").
    /// Returns `None` when nothing landed.
    pub fn accuracy(&self) -> Option<f64> {
        let landed = self.pf_fills + self.late_prefetch_hits;
        (landed > 0).then(|| self.useful_prefetch_hits as f64 / landed as f64)
    }

    /// Fraction of would-be demand misses covered by prefetching:
    /// `useful / (useful + misses)`. This is the in-run coverage metric
    /// (Fig. 10); cross-run coverage against a no-prefetch baseline is
    /// computed by the bench harness.
    pub fn coverage(&self) -> Option<f64> {
        let denom = self.useful_prefetch_hits + self.demand_misses;
        (denom > 0).then(|| self.useful_prefetch_hits as f64 / denom as f64)
    }

    /// Demand misses per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.demand_misses as f64 * 1000.0 / instructions as f64
    }

    /// Resets all counters (end of warm-up).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds another stats block counter-by-counter (aggregating private
    /// caches across cores for the interval sampler).
    pub fn accumulate(&mut self, other: &Self) {
        self.demand_accesses += other.demand_accesses;
        self.demand_hits += other.demand_hits;
        self.demand_misses += other.demand_misses;
        self.late_prefetch_hits += other.late_prefetch_hits;
        self.useful_prefetch_hits += other.useful_prefetch_hits;
        self.pf_issued += other.pf_issued;
        self.pf_dropped_pq_full += other.pf_dropped_pq_full;
        self.pf_dropped_present += other.pf_dropped_present;
        self.pf_dropped_mshr_full += other.pf_dropped_mshr_full;
        self.pf_fills += other.pf_fills;
        self.pf_useless_evicted += other.pf_useless_evicted;
        self.writebacks += other.writebacks;
        self.mshr_full_rejects += other.mshr_full_rejects;
        self.miss_latency_sum += other.miss_latency_sum;
        self.merge_wait_sum += other.merge_wait_sum;
        for i in 0..PF_CLASSES {
            self.useful_by_class[i] += other.useful_by_class[i];
            self.fills_by_class[i] += other.fills_by_class[i];
            self.rr_drops_by_class[i] += other.rr_drops_by_class[i];
        }
    }

    /// Counter-by-counter difference `self - earlier` (saturating), giving
    /// the activity of one sampling interval from two cumulative snapshots.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        let mut d = Self {
            demand_accesses: self.demand_accesses.saturating_sub(earlier.demand_accesses),
            demand_hits: self.demand_hits.saturating_sub(earlier.demand_hits),
            demand_misses: self.demand_misses.saturating_sub(earlier.demand_misses),
            late_prefetch_hits: self
                .late_prefetch_hits
                .saturating_sub(earlier.late_prefetch_hits),
            useful_prefetch_hits: self
                .useful_prefetch_hits
                .saturating_sub(earlier.useful_prefetch_hits),
            pf_issued: self.pf_issued.saturating_sub(earlier.pf_issued),
            pf_dropped_pq_full: self
                .pf_dropped_pq_full
                .saturating_sub(earlier.pf_dropped_pq_full),
            pf_dropped_present: self
                .pf_dropped_present
                .saturating_sub(earlier.pf_dropped_present),
            pf_dropped_mshr_full: self
                .pf_dropped_mshr_full
                .saturating_sub(earlier.pf_dropped_mshr_full),
            pf_fills: self.pf_fills.saturating_sub(earlier.pf_fills),
            pf_useless_evicted: self
                .pf_useless_evicted
                .saturating_sub(earlier.pf_useless_evicted),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            mshr_full_rejects: self
                .mshr_full_rejects
                .saturating_sub(earlier.mshr_full_rejects),
            miss_latency_sum: self
                .miss_latency_sum
                .saturating_sub(earlier.miss_latency_sum),
            merge_wait_sum: self.merge_wait_sum.saturating_sub(earlier.merge_wait_sum),
            ..Self::default()
        };
        for i in 0..PF_CLASSES {
            d.useful_by_class[i] =
                self.useful_by_class[i].saturating_sub(earlier.useful_by_class[i]);
            d.fills_by_class[i] = self.fills_by_class[i].saturating_sub(earlier.fills_by_class[i]);
            d.rr_drops_by_class[i] =
                self.rr_drops_by_class[i].saturating_sub(earlier.rr_drops_by_class[i]);
        }
        d
    }
}

/// DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of channels (set by the DRAM model; utilization divides by it).
    pub channels: u32,
    /// Read bursts serviced.
    pub reads: u64,
    /// Write (write-back) bursts serviced.
    pub writes: u64,
    /// Row-buffer hits among reads.
    pub row_hits: u64,
    /// Row-buffer misses among reads.
    pub row_misses: u64,
    /// Total cycles the data bus was occupied.
    pub bus_busy_cycles: u64,
}

impl DramStats {
    /// Total data traffic in bytes (64 B per burst).
    pub fn traffic_bytes(&self) -> u64 {
        (self.reads + self.writes) * ipcp_mem::LINE_BYTES
    }

    /// Resets all counters (the channel count is preserved).
    pub fn reset(&mut self) {
        *self = Self {
            channels: self.channels,
            ..Self::default()
        };
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// DTLB lookups.
    pub dtlb_accesses: u64,
    /// DTLB misses.
    pub dtlb_misses: u64,
    /// STLB misses (page walks).
    pub stlb_misses: u64,
}

impl TlbStats {
    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Coarse host-side phase timers over the demand pipeline (`None` unless
/// the `IPCP_PHASE_STATS` knob is set). These are wall-clock nanoseconds —
/// observability, not simulated state: two runs of the same workload never
/// produce the same values, so serialized reports strip them (see
/// `SimCache::store_report`) exactly like the scheduler counters.
///
/// `train_ns` is *nested* inside `issue_ns`/`fill_ns`/`drain_ns` (the
/// prefetcher hooks fire from within those phases), so the five fields
/// overlap rather than partition the run time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Instruction fetch/dispatch: batch refill, derived-column compute,
    /// L1I probes, ROB pushes.
    pub decode_ns: u64,
    /// Retire plus demand issue (translate → L1D probe → miss chains),
    /// including nested training time.
    pub issue_ns: u64,
    /// Fill processing (MSHR drain, installs, write-backs).
    pub fill_ns: u64,
    /// Prefetcher hook time (access/arrival/cycle hooks and the request
    /// enqueues they emit); nested within the other phases.
    pub train_ns: u64,
    /// Prefetch-queue drains into the lower levels.
    pub drain_ns: u64,
}

/// Per-core statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired (measured phase).
    pub instructions: u64,
    /// Cycles elapsed (measured phase).
    pub cycles: u64,
    /// Cycles in which no instruction retired.
    pub stall_cycles: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }
}

/// The complete result of one simulated core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreReport {
    /// Trace name.
    pub trace: String,
    /// Core counters.
    pub core: CoreStats,
    /// L1-I stats.
    pub l1i: CacheStats,
    /// L1-D stats.
    pub l1d: CacheStats,
    /// L2 stats.
    pub l2: CacheStats,
    /// TLB stats.
    pub tlb: TlbStats,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Per-core results.
    pub cores: Vec<CoreReport>,
    /// Shared LLC stats.
    pub llc: CacheStats,
    /// DRAM stats.
    pub dram: DramStats,
    /// Total cycles simulated in the measured phase.
    pub cycles: u64,
    /// Interval time-series (empty unless `SimConfig::sample_interval` is
    /// set — see [`crate::telemetry::Sampler`]). Stored as a shared slice
    /// so cloning a report (or attaching its series to a figure sidecar)
    /// never copies samples.
    pub samples: std::sync::Arc<[crate::telemetry::Sample]>,
    /// Wakeup-scheduler observability counters (`None` unless the
    /// `IPCP_SCHED_STATS` knob is set *and* the fast scheduler ran — see
    /// [`crate::sched::SchedStats`]). Absent from the serialized report
    /// when `None`, so figure outputs stay byte-identical by default.
    pub sched: Option<crate::sched::SchedStats>,
    /// Host-side phase timers (`None` unless `IPCP_PHASE_STATS` is set —
    /// see [`PhaseStats`]). Wall-clock, non-deterministic by nature;
    /// stripped from cached/serialized reports like `sched`.
    pub phases: Option<PhaseStats>,
}

impl SimReport {
    /// IPC of core 0 — the headline metric for single-core runs.
    pub fn ipc(&self) -> f64 {
        self.cores.first().map_or(0.0, |c| c.core.ipc())
    }

    /// LLC demand MPKI summed over all cores' instructions — the paper's
    /// "memory intensive" criterion is LLC MPKI ≥ 1.
    pub fn llc_mpki(&self) -> f64 {
        let instr: u64 = self.cores.iter().map(|c| c.core.instructions).sum();
        self.llc.mpki(instr)
    }

    /// DRAM bandwidth utilization in the measured window (0..=1), averaged
    /// across channels.
    pub fn dram_bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.dram.bus_busy_cycles as f64
            / (self.cycles as f64 * f64::from(self.dram.channels.max(1)))
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "core{i} {}: IPC {:.4}  L1D MPKI {:.2}  L2 MPKI {:.2}",
                c.trace,
                c.core.ipc(),
                c.l1d.mpki(c.core.instructions),
                c.l2.mpki(c.core.instructions),
            )?;
        }
        let instr: u64 = self.cores.iter().map(|c| c.core.instructions).sum();
        writeln!(
            f,
            "LLC MPKI {:.2}  DRAM reads {} writes {} busy {:.1}%",
            self.llc.mpki(instr),
            self.dram.reads,
            self.dram.writes,
            100.0 * self.dram_bus_utilization(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_coverage() {
        let mut s = CacheStats::default();
        assert_eq!(s.accuracy(), None);
        assert_eq!(s.coverage(), None);
        s.pf_fills = 100;
        s.useful_prefetch_hits = 80;
        s.demand_misses = 20;
        assert!((s.accuracy().unwrap() - 0.8).abs() < 1e-12);
        assert!((s.coverage().unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mpki_zero_instructions() {
        let s = CacheStats {
            demand_misses: 5,
            ..Default::default()
        };
        assert_eq!(s.mpki(0), 0.0);
        assert!((s.mpki(1000) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dram_traffic() {
        let d = DramStats {
            reads: 3,
            writes: 1,
            ..Default::default()
        };
        assert_eq!(d.traffic_bytes(), 4 * 64);
    }

    #[test]
    fn core_ipc() {
        let c = CoreStats {
            instructions: 400,
            cycles: 100,
            stall_cycles: 0,
        };
        assert!((c.ipc() - 4.0).abs() < 1e-12);
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn report_display_nonempty() {
        let r = SimReport {
            cores: vec![CoreReport {
                trace: "t".into(),
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!(!format!("{r}").is_empty());
    }
}
