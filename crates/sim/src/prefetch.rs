//! The prefetcher interface: how prefetchers observe the access stream and
//! inject prefetch requests, including the L1→L2 metadata channel that
//! multi-level IPCP rides on.

use ipcp_mem::{Ip, LineAddr};

use crate::config::Cycle;

/// Which cache level a prefetch should be filled into. Fills always
/// propagate to the levels *below* the target as well ("the prefetch
/// requests issued into L2 and L1 are also filled into the LLC").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillLevel {
    /// Fill into L1-D (and L2, LLC on the way).
    L1,
    /// Fill into L2 (and LLC) only — used both by L2 prefetchers and by the
    /// "train at L1 but prefetch till L2" experiment of Fig. 1.
    L2,
    /// Fill into the LLC only (the restrictive next-line used at the LLC by
    /// several DPC-3 combinations).
    Llc,
}

/// The kind of demand access observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DemandKind {
    /// A data load.
    Load,
    /// A store (read-for-ownership).
    Rfo,
    /// An instruction fetch (L1-I side; L1-D prefetchers never see these).
    IFetch,
}

/// The 9-bit class metadata IPCP transmits from L1 to L2 along with each
/// prefetch request: a 2-bit class plus a 7-bit stride / stream direction
/// (Section V, "Metadata Decoding at L2").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchMeta {
    /// 2-bit class type: the paper encodes no-class=0, CS=1, CPLX=2, GS=3.
    pub class: u8,
    /// 7-bit signed stride (CS) or stream direction ±1 (GS). The simulator
    /// carries it as an `i8`; the holder is responsible for staying within
    /// 7 bits (checked by IPCP's own tests).
    pub stride: i8,
}

/// A prefetch request emitted by a prefetcher into a cache's prefetch queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Target line. L1 prefetchers emit *virtual* line addresses (IPCP
    /// trains on virtual addresses; the L1 is VIPT); L2/LLC prefetchers
    /// emit physical line addresses. The `virtual_addr` flag disambiguates.
    pub line: LineAddr,
    /// True when `line` is a virtual line address needing translation.
    pub virtual_addr: bool,
    /// Where the block should be filled.
    pub fill: FillLevel,
    /// 2-bit class tag recorded in the filled line (per-class accuracy
    /// accounting needs it back on hits/evictions).
    pub pf_class: u8,
    /// Optional metadata forwarded to the next level's prefetcher.
    pub meta: Option<PrefetchMeta>,
}

impl PrefetchRequest {
    /// Convenience constructor for an L1 prefetch of a virtual line.
    pub fn l1(line: LineAddr) -> Self {
        Self {
            line,
            virtual_addr: true,
            fill: FillLevel::L1,
            pf_class: 0,
            meta: None,
        }
    }

    /// Convenience constructor for an L2 prefetch of a physical line.
    pub fn l2(line: LineAddr) -> Self {
        Self {
            line,
            virtual_addr: false,
            fill: FillLevel::L2,
            pf_class: 0,
            meta: None,
        }
    }

    /// Sets the class tag.
    #[must_use]
    pub fn with_class(mut self, class: u8) -> Self {
        self.pf_class = class & 0b11;
        self
    }

    /// Attaches L1→L2 metadata.
    #[must_use]
    pub fn with_meta(mut self, meta: PrefetchMeta) -> Self {
        self.meta = Some(meta);
        self
    }

    /// Overrides the fill level.
    #[must_use]
    pub fn with_fill(mut self, fill: FillLevel) -> Self {
        self.fill = fill;
        self
    }
}

/// Decode-time derivations of a demand access's addresses: every slice of
/// `(ip, vline)` the training path consumes. Computed once per instruction
/// — from the batch's derived columns on the fused demand path, or by
/// [`AddrDecode::of`] where no columns exist (L2/LLC triggers, tests) —
/// and carried through [`AccessInfo`] so the prefetcher never re-derives
/// them per access.
#[derive(Debug, Clone, Copy)]
pub struct AddrDecode {
    /// Line offset within the 4 KB page (`vline.page_offset()`).
    pub page_off: ipcp_mem::LineOffset,
    /// 2 KB region index (`vline.region()`).
    pub region: ipcp_mem::RegionId,
    /// Line offset within the region (`vline.region_offset()`).
    pub region_off: ipcp_mem::RegionOffset,
    /// Two low bits of the virtual page (`vline.vpage().lsb2()`).
    pub vpage_lsb2: u8,
    /// IP-table index/tag source bits (`ip >> 2`).
    pub ip_key: u64,
}

impl AddrDecode {
    /// Derives all fields from scratch (the non-columnar entry point).
    #[inline]
    pub fn of(ip: Ip, vline: LineAddr) -> Self {
        Self {
            page_off: vline.page_offset(),
            region: vline.region(),
            region_off: vline.region_offset(),
            vpage_lsb2: vline.vpage().lsb2(),
            ip_key: ip.raw() >> 2,
        }
    }
}

/// Everything a prefetcher sees on a demand access. `vline` is only
/// meaningful at the L1 (the L2/LLC train on physical addresses, as in
/// ChampSim).
#[derive(Debug, Clone, Copy)]
pub struct AccessInfo {
    /// Current cycle.
    pub cycle: Cycle,
    /// Triggering instruction pointer.
    pub ip: Ip,
    /// Virtual line address (equal to `pline` at L2/LLC).
    pub vline: LineAddr,
    /// Physical line address.
    pub pline: LineAddr,
    /// Load or RFO.
    pub kind: DemandKind,
    /// Whether the access hit in this cache.
    pub hit: bool,
    /// The access hit a line that was prefetched and not yet used: this is
    /// the "useful prefetch" event per-class throttling counts.
    pub first_use_of_prefetch: bool,
    /// Class bits of the hit line (valid when `first_use_of_prefetch`).
    pub hit_pf_class: u8,
    /// Instructions retired so far on this core (for MPKI-based decisions
    /// such as IPCP's tentative next-line).
    pub instructions: u64,
    /// Demand misses of this cache so far (other half of the MPKI).
    pub demand_misses: u64,
    /// DRAM data-bus utilization over a recent window, 0..=1 (DSPatch's
    /// bandwidth signal).
    pub dram_utilization: f64,
    /// Decode-time address derivations of `(ip, vline)`.
    pub decode: AddrDecode,
}

/// Everything a prefetcher sees when a block fills into its cache level.
#[derive(Debug, Clone, Copy)]
pub struct FillInfo {
    /// Current cycle.
    pub cycle: Cycle,
    /// Physical line filled.
    pub pline: LineAddr,
    /// True if the fill was triggered by a prefetch.
    pub was_prefetch: bool,
    /// Class bits carried by the prefetch (0 for demand fills).
    pub pf_class: u8,
    /// The physical line that was evicted to make room, if any.
    pub evicted: Option<LineAddr>,
    /// The evicted line was an unused prefetch (over-prediction signal).
    pub evicted_unused_prefetch: bool,
}

/// Notification delivered to the L2 prefetcher when a prefetch request
/// issued by the L1 arrives at the L2 — the metadata decode path of
/// multi-level IPCP.
#[derive(Debug, Clone, Copy)]
pub struct MetadataArrival {
    /// Current cycle.
    pub cycle: Cycle,
    /// IP of the original L1 demand access ("the IP of the request is
    /// passed to the L2").
    pub ip: Ip,
    /// Physical line being prefetched.
    pub pline: LineAddr,
    /// The 9-bit metadata, if the L1 prefetcher attached any.
    pub meta: Option<PrefetchMeta>,
    /// Instructions retired so far on this core.
    pub instructions: u64,
    /// Demand misses of the receiving cache so far.
    pub demand_misses: u64,
}

/// Sink for prefetch requests. Returns `false` when the request was dropped
/// (prefetch queue full) so prefetchers can account for it if they care.
pub trait PrefetchSink {
    /// Queues one prefetch request.
    fn prefetch(&mut self, req: PrefetchRequest) -> bool;

    /// Queues a batch of requests in order, returning a bitmask with bit
    /// `k` set iff `reqs[k]` was accepted. Lets degree-N prefetchers cross
    /// the sink boundary once per trigger instead of once per candidate;
    /// the default forwards to [`PrefetchSink::prefetch`] per request, so
    /// the two paths are interchangeable by construction.
    fn prefetch_batch(&mut self, reqs: &[PrefetchRequest]) -> u32 {
        debug_assert!(reqs.len() <= 32, "batch exceeds the accept mask");
        let mut accepted = 0u32;
        for (k, &r) in reqs.iter().enumerate() {
            if self.prefetch(r) {
                accepted |= 1 << k;
            }
        }
        accepted
    }
}

/// A simple buffering sink used by the simulator (requests are moved into
/// the cache's PQ after the prefetcher call returns) and by unit tests.
#[derive(Debug, Default)]
pub struct VecSink {
    /// Collected requests.
    pub requests: Vec<PrefetchRequest>,
    /// Remaining PQ capacity; `None` = unlimited.
    pub capacity: Option<usize>,
    /// Requests rejected due to capacity.
    pub dropped: u64,
}

impl VecSink {
    /// Unlimited-capacity sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sink that accepts at most `capacity` requests.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Drains the collected requests and resets the drop counter, so a
    /// reused sink starts the next collection round clean.
    pub fn take(&mut self) -> Vec<PrefetchRequest> {
        self.dropped = 0;
        std::mem::take(&mut self.requests)
    }

    /// Drains the collected requests *and* the drop count accumulated since
    /// the last drain, for callers that account for capacity drops.
    pub fn take_all(&mut self) -> (Vec<PrefetchRequest>, u64) {
        let dropped = std::mem::take(&mut self.dropped);
        (std::mem::take(&mut self.requests), dropped)
    }
}

impl PrefetchSink for VecSink {
    fn prefetch(&mut self, req: PrefetchRequest) -> bool {
        if let Some(cap) = self.capacity {
            if self.requests.len() >= cap {
                self.dropped += 1;
                return false;
            }
        }
        self.requests.push(req);
        true
    }

    fn prefetch_batch(&mut self, reqs: &[PrefetchRequest]) -> u32 {
        debug_assert!(reqs.len() <= 32, "batch exceeds the accept mask");
        if self.capacity.is_none() {
            // Unlimited sink (the simulator's scratch buffer): one bulk
            // append, everything accepted.
            self.requests.extend_from_slice(reqs);
            return u32::checked_shl(1, reqs.len() as u32).map_or(u32::MAX, |b| b - 1);
        }
        let mut accepted = 0u32;
        for (k, &r) in reqs.iter().enumerate() {
            if self.prefetch(r) {
                accepted |= 1 << k;
            }
        }
        accepted
    }
}

/// A hardware prefetcher attached to one cache level.
///
/// All methods have defaults so tiny prefetchers only implement what they
/// observe. Implementations must be deterministic: the simulator is run in
/// A/B comparisons where run-to-run noise would drown the signal.
pub trait Prefetcher: Send {
    /// Short name for reports (e.g. `"ipcp"`, `"bingo"`).
    fn name(&self) -> &'static str;

    /// Invoked on every demand access to the attached cache (hits and
    /// misses, after the hit/miss outcome is known — the ChampSim operate
    /// hook).
    fn on_access(&mut self, info: &AccessInfo, sink: &mut dyn PrefetchSink);

    /// Invoked when a block fills into the attached cache.
    fn on_fill(&mut self, _fill: &FillInfo) {}

    /// Invoked (L2/LLC only) when a prefetch from the level above arrives,
    /// carrying optional IPCP metadata.
    fn on_prefetch_arrival(&mut self, _arrival: &MetadataArrival, _sink: &mut dyn PrefetchSink) {}

    /// Invoked once per simulated cycle. Most prefetchers ignore this; BOP
    /// uses it for its round-scoring timer.
    ///
    /// An implementation that overrides this MUST also override
    /// [`Prefetcher::uses_cycle_hook`] to return `true`, or the system
    /// will never call it.
    fn on_cycle(&mut self, _cycle: Cycle, _sink: &mut dyn PrefetchSink) {}

    /// Whether [`Prefetcher::on_cycle`] does anything. The system checks
    /// this once at construction and skips the per-cycle hook pass
    /// entirely when no attached prefetcher needs it — the hook is a
    /// virtual call per prefetcher per cycle, which is pure overhead for
    /// the common access-driven designs. Wrappers must forward this.
    fn uses_cycle_hook(&self) -> bool {
        false
    }

    /// Whether this prefetcher never issues anything (the "none"
    /// baseline). The system checks this once at construction and skips
    /// the whole per-access hook (event-struct assembly plus a virtual
    /// call on every demand access) for inert prefetchers — every speedup
    /// figure runs a `none` baseline, so the dead hook is measurable.
    /// Wrappers must forward this.
    fn is_noop(&self) -> bool {
        false
    }

    /// Storage the hardware implementation would need, in bits — the
    /// currency of Table I / Table III.
    fn storage_bits(&self) -> u64 {
        0
    }

    /// Lifetime prefetch candidates this prefetcher itself filtered out
    /// before issuing, per class (NL, CS, CPLX, GS order) — IPCP's RR
    /// filter is the canonical source. Prefetchers without an internal
    /// filter report zeros. The system folds these into
    /// [`crate::stats::CacheStats::rr_drops_by_class`] so fig11-style
    /// overprediction analysis can attribute the filtering. Wrappers must
    /// forward this.
    fn filter_drops_by_class(&self) -> [u64; 4] {
        [0; 4]
    }
}

/// The no-op prefetcher (the paper's "no prefetching" baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_access(&mut self, _info: &AccessInfo, _sink: &mut dyn PrefetchSink) {}

    fn is_noop(&self) -> bool {
        true
    }
}

/// Wrapper that rewrites every request's fill level — how the Fig. 1
/// "train at L1 but prefetch till L2" experiment is expressed.
pub struct FillLevelOverride<P> {
    inner: P,
    fill: FillLevel,
}

impl<P: Prefetcher> FillLevelOverride<P> {
    /// Wraps `inner`, forcing all its requests to fill at `fill`.
    pub fn new(inner: P, fill: FillLevel) -> Self {
        Self { inner, fill }
    }
}

struct OverrideSink<'a> {
    inner: &'a mut dyn PrefetchSink,
    fill: FillLevel,
}

impl PrefetchSink for OverrideSink<'_> {
    fn prefetch(&mut self, req: PrefetchRequest) -> bool {
        self.inner.prefetch(req.with_fill(self.fill))
    }
}

impl<P: Prefetcher> Prefetcher for FillLevelOverride<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_access(&mut self, info: &AccessInfo, sink: &mut dyn PrefetchSink) {
        let mut s = OverrideSink {
            inner: sink,
            fill: self.fill,
        };
        self.inner.on_access(info, &mut s);
    }

    fn on_fill(&mut self, fill: &FillInfo) {
        self.inner.on_fill(fill);
    }

    fn on_prefetch_arrival(&mut self, arrival: &MetadataArrival, sink: &mut dyn PrefetchSink) {
        let mut s = OverrideSink {
            inner: sink,
            fill: self.fill,
        };
        self.inner.on_prefetch_arrival(arrival, &mut s);
    }

    fn on_cycle(&mut self, cycle: Cycle, sink: &mut dyn PrefetchSink) {
        let mut s = OverrideSink {
            inner: sink,
            fill: self.fill,
        };
        self.inner.on_cycle(cycle, &mut s);
    }

    fn uses_cycle_hook(&self) -> bool {
        self.inner.uses_cycle_hook()
    }

    fn is_noop(&self) -> bool {
        self.inner.is_noop()
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }

    fn filter_drops_by_class(&self) -> [u64; 4] {
        self.inner.filter_drops_by_class()
    }
}

/// Helper to build an [`AccessInfo`] in tests.
#[doc(hidden)]
pub fn test_access(ip: u64, vline: u64, hit: bool) -> AccessInfo {
    AccessInfo {
        cycle: 0,
        ip: Ip(ip),
        vline: LineAddr::new(vline),
        pline: LineAddr::new(vline),
        kind: DemandKind::Load,
        hit,
        first_use_of_prefetch: false,
        hit_pf_class: 0,
        instructions: 1000,
        demand_misses: 0,
        dram_utilization: 0.0,
        decode: AddrDecode::of(Ip(ip), LineAddr::new(vline)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders() {
        let r = PrefetchRequest::l1(LineAddr::new(100))
            .with_class(3)
            .with_meta(PrefetchMeta {
                class: 3,
                stride: -1,
            });
        assert!(r.virtual_addr);
        assert_eq!(r.fill, FillLevel::L1);
        assert_eq!(r.pf_class, 3);
        assert_eq!(r.meta.unwrap().stride, -1);
        let r = PrefetchRequest::l2(LineAddr::new(5)).with_fill(FillLevel::Llc);
        assert!(!r.virtual_addr);
        assert_eq!(r.fill, FillLevel::Llc);
    }

    #[test]
    fn class_is_masked_to_two_bits() {
        let r = PrefetchRequest::l1(LineAddr::new(0)).with_class(0xff);
        assert_eq!(r.pf_class, 3);
    }

    #[test]
    fn vec_sink_capacity() {
        let mut s = VecSink::with_capacity(2);
        assert!(s.prefetch(PrefetchRequest::l1(LineAddr::new(1))));
        assert!(s.prefetch(PrefetchRequest::l1(LineAddr::new(2))));
        assert!(!s.prefetch(PrefetchRequest::l1(LineAddr::new(3))));
        assert_eq!(s.dropped, 1);
        assert_eq!(s.take().len(), 2);
        assert!(s.requests.is_empty());
        // `take` resets the drop counter: a reused sink does not carry
        // drops from the previous round into the next one.
        assert_eq!(s.dropped, 0);
        assert!(s.prefetch(PrefetchRequest::l1(LineAddr::new(4))));
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn vec_sink_take_all_returns_round_drops() {
        let mut s = VecSink::with_capacity(1);
        assert!(s.prefetch(PrefetchRequest::l1(LineAddr::new(1))));
        assert!(!s.prefetch(PrefetchRequest::l1(LineAddr::new(2))));
        assert!(!s.prefetch(PrefetchRequest::l1(LineAddr::new(3))));
        let (reqs, dropped) = s.take_all();
        assert_eq!(reqs.len(), 1);
        assert_eq!(dropped, 2);
        // Next round starts clean.
        assert!(s.prefetch(PrefetchRequest::l1(LineAddr::new(4))));
        let (reqs, dropped) = s.take_all();
        assert_eq!(reqs.len(), 1);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn no_prefetcher_is_silent() {
        let mut p = NoPrefetcher;
        let mut s = VecSink::new();
        p.on_access(&test_access(1, 2, false), &mut s);
        assert!(s.requests.is_empty());
        assert_eq!(p.storage_bits(), 0);
    }

    struct AlwaysNextLine;
    impl Prefetcher for AlwaysNextLine {
        fn name(&self) -> &'static str {
            "nl-test"
        }
        fn on_access(&mut self, info: &AccessInfo, sink: &mut dyn PrefetchSink) {
            sink.prefetch(PrefetchRequest::l1(info.vline.offset_by(1)));
        }
    }

    #[test]
    fn fill_level_override_rewrites() {
        let mut p = FillLevelOverride::new(AlwaysNextLine, FillLevel::L2);
        let mut s = VecSink::new();
        p.on_access(&test_access(1, 10, false), &mut s);
        assert_eq!(s.requests.len(), 1);
        assert_eq!(s.requests[0].fill, FillLevel::L2);
        assert_eq!(p.name(), "nl-test");
    }
}
