//! A set-associative cache bank with MSHRs, a FIFO prefetch queue, and
//! deferred fills.
//!
//! [`Cache`] owns the tag/state arrays and the structural resources; the
//! inter-level request flow (miss path, fill-forwarding, write-backs) lives
//! in [`crate::system`], which orchestrates the fixed L1/L2/LLC hierarchy.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use ipcp_mem::{Ip, LineAddr};

use crate::config::{CacheConfig, Cycle};
use crate::prefetch::PrefetchRequest;
use crate::replacement::{self, ReplMeta, Replacement};
use crate::stats::CacheStats;

/// Sentinel for "fill time not yet known".
pub const FILL_UNKNOWN: Cycle = Cycle::MAX;

/// Sentinel tag marking an empty way. Physical line numbers are physical
/// addresses shifted right by the 6 line-offset bits, so a real line can
/// never reach `u64::MAX`; a single tag compare therefore replaces the
/// old valid-bit + tag pair on the lookup hot path.
const TAG_INVALID: u64 = u64::MAX;

/// Outcome of probing a cache for a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// Line present; contains whether this was the first demand touch of an
    /// unused prefetched line, and that line's prefetch class.
    Hit {
        /// First demand use of a prefetched line.
        first_use_of_prefetch: bool,
        /// Prefetch class bits of the line (0 if not a prefetch).
        pf_class: u8,
    },
    /// Line absent but an MSHR is already outstanding for it; the payload is
    /// the cycle the fill completes.
    MshrMerge {
        /// Completion cycle of the in-flight fill.
        fill_at: Cycle,
    },
    /// Line absent, no MSHR: a true miss (caller must allocate an MSHR).
    Miss,
    /// No MSHR available — the access must be retried.
    MshrFull,
}

/// An in-flight miss.
#[derive(Debug, Clone, Copy)]
pub struct Mshr {
    /// Line being fetched (physical).
    pub line: LineAddr,
    /// Cycle at which the fill completes here.
    pub fill_at: Cycle,
    /// The fill was triggered by a prefetch (and no demand merged since).
    pub is_prefetch: bool,
    /// Class bits carried by the prefetch.
    pub pf_class: u8,
    /// Line should be marked dirty on fill (RFO).
    pub dirty: bool,
    /// IP of the triggering access (for replacement metadata).
    pub ip: Ip,
}

/// A prefetch request waiting in the PQ.
#[derive(Debug, Clone, Copy)]
pub struct QueuedPrefetch {
    /// The original request.
    pub req: PrefetchRequest,
    /// Physical line (translated at enqueue for L1 virtual requests).
    pub pline: LineAddr,
    /// IP that triggered the prefetcher (for metadata forwarding).
    pub ip: Ip,
}

/// What got evicted by a fill.
#[derive(Debug, Clone, Copy)]
pub struct Evicted {
    /// The victim line.
    pub line: LineAddr,
    /// It was dirty (needs a write-back).
    pub dirty: bool,
    /// It was a prefetched line never demanded (over-prediction).
    pub unused_prefetch: bool,
}

/// One cache level.
pub struct Cache {
    name: &'static str,
    sets: usize,
    ways: usize,
    latency: Cycle,
    ports: u32,
    ports_used: u32,
    /// Cycle the port counter was last reset for. Ports are reset lazily on
    /// the first `try_take_port` of a cycle instead of by a per-cycle
    /// `begin_cycle` broadcast, so idle caches cost nothing.
    port_cycle: Cycle,

    // Line state, struct-of-arrays. `tags` doubles as the valid bit via
    // the `TAG_INVALID` sentinel (lines are never invalidated once
    // installed, so a slot leaves the sentinel state exactly once).
    tags: Vec<u64>,
    dirty: Vec<bool>,
    prefetched: Vec<bool>,
    pf_class: Vec<u8>,
    reused: Vec<bool>,

    repl: replacement::AnyRepl,

    mshrs: Vec<Option<Mshr>>,
    mshr_used: usize,
    /// Line column over `mshrs` ([`TAG_INVALID`] marks a free slot): merge
    /// probes are one SIMD-friendly scan of a few cache lines, and
    /// allocation takes the first sentinel slot — the same *lowest free
    /// index* an explicit free-list min-heap handed out, which matters
    /// because the fill heap breaks equal-cycle ties by slot index and
    /// simulation results must stay bit-identical.
    mshr_lines: Vec<u64>,
    /// One past the highest occupied slot of `mshr_lines`: every slot at or
    /// beyond it is free. Lowest-free-index allocation keeps occupancy
    /// clustered at the bottom, so probes and allocations scan
    /// `mshr_lines[..mshr_scan]` — O(occupancy), not O(capacity), which
    /// matters at the core-scaled LLC.
    mshr_scan: usize,
    pending_fills: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Mirror of `pending_fills.peek()`'s time (`FILL_UNKNOWN` when the heap
    /// is empty), maintained on push/pop so the scheduler's per-cycle
    /// "any fill due?" check is a register compare, not a heap access.
    next_fill: Cycle,

    pq: VecDeque<QueuedPrefetch>,
    pq_capacity: usize,

    /// Per-set repeat demand-hit fast path: `(raw tag, slot index, pf
    /// class)` of the last demand hit in each set, valid while that hit
    /// remains the newest replacement-state event *in its set* (recency
    /// comparisons never cross sets). A repeat hit then needs no tag scan
    /// and no `on_hit` call (guarded by
    /// [`Replacement::repeat_hit_is_noop`]); it bumps the two demand
    /// counters and re-applies the dirty bit, which is everything the full
    /// path would observably do. A hit elsewhere in the set replaces the
    /// entry; [`Cache::install`] (the only other replacement-touching
    /// event, and the only way the slot's contents can change) clears its
    /// set's entry. Empty entries hold the `TAG_INVALID` sentinel.
    last_hit: Vec<(u64, u32, u8)>,
    repeat_hit_ok: bool,

    /// Oracle mode ([`SimConfig::no_fastpath`]): every access-path shortcut
    /// is disabled — the repeat-hit memo never arms, the way predictor is
    /// never consulted, and the replacement policy runs behind virtual
    /// dispatch. Used by the differential checker to prove the shortcuts
    /// are behavior-preserving; reports must come out byte-identical.
    ///
    /// [`SimConfig::no_fastpath`]: crate::config::SimConfig::no_fastpath
    naive: bool,

    /// Direct-mapped line → slot predictor, indexed by the low bits of the
    /// raw line address. Purely an access-path shortcut: a prediction is
    /// trusted only after verifying `tags[slot] == raw`, which by itself
    /// proves residency (a line can only ever sit in its own set, and at
    /// most one slot holds it), so stale or colliding entries are harmless
    /// and no invalidation is needed — eviction overwrites the tag and the
    /// check fails. Turns the hot-hit tag scan into one load + compare
    /// regardless of associativity or replacement policy.
    way_pred: Vec<u32>,

    lifetime_misses: u64,

    /// Counters for this level.
    pub stats: CacheStats,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("name", &self.name)
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field("mshr_used", &self.mshr_used)
            .field("pq_len", &self.pq.len())
            .finish()
    }
}

impl Cache {
    /// Builds a cache from its configuration. `scale` multiplies capacity,
    /// MSHR, and PQ entries (the LLC scales with core count per Table II).
    pub fn new(cfg: &CacheConfig, scale: u32) -> Self {
        Self::new_with_mode(cfg, scale, false)
    }

    /// Like [`Cache::new`], but `naive` selects the oracle slow path: no
    /// repeat-hit memo, no way predictor, boxed (virtually dispatched)
    /// replacement. Behavior must match the fast path exactly; the
    /// differential audit relies on byte-identical reports.
    pub fn new_with_mode(cfg: &CacheConfig, scale: u32, naive: bool) -> Self {
        let sets = cfg.sets_with_scale(scale) as usize;
        let ways = cfg.ways as usize;
        let n = sets * ways;
        let mshr_entries = (cfg.mshr_entries * scale) as usize;
        let repl = if naive {
            replacement::build_boxed(cfg.replacement, sets, ways)
        } else {
            replacement::build(cfg.replacement, sets, ways)
        };
        let repeat_hit_ok = !naive && repl.repeat_hit_is_noop();
        Self {
            name: cfg.name,
            sets,
            ways,
            latency: cfg.latency,
            ports: cfg.ports,
            ports_used: 0,
            port_cycle: FILL_UNKNOWN,
            tags: vec![TAG_INVALID; n],
            dirty: vec![false; n],
            prefetched: vec![false; n],
            pf_class: vec![0; n],
            reused: vec![false; n],
            repl,
            mshrs: (0..mshr_entries).map(|_| None).collect(),
            mshr_used: 0,
            mshr_lines: vec![TAG_INVALID; mshr_entries],
            mshr_scan: 0,
            pending_fills: BinaryHeap::new(),
            next_fill: FILL_UNKNOWN,
            pq: VecDeque::new(),
            pq_capacity: (cfg.pq_entries * scale) as usize,
            last_hit: vec![(TAG_INVALID, 0, 0); sets],
            repeat_hit_ok,
            naive,
            way_pred: vec![u32::MAX; (2 * n).next_power_of_two()],
            lifetime_misses: 0,
            stats: CacheStats::default(),
        }
    }

    /// The level's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets - 1)
    }

    fn find_way(&self, line: LineAddr) -> Option<usize> {
        let base = self.set_of(line) * self.ways;
        let raw = line.raw();
        // Mask-then-locate instead of an early-exit scan: a line sits in at
        // most one way, and on the (common) full-miss the whole set is read
        // anyway, so comparing every way as SIMD lanes beats branching per
        // way.
        let mut mask = 0u32;
        for (w, &t) in self.tags[base..base + self.ways].iter().enumerate() {
            mask |= u32::from(t == raw) << w;
        }
        (mask != 0).then(|| mask.trailing_zeros() as usize)
    }

    /// True when the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    /// Attempts to reserve a demand port at cycle `now`. Port accounting
    /// resets itself on the first reservation attempt of each cycle (cycles
    /// advance monotonically), so idle caches need no per-cycle reset call.
    pub fn try_take_port(&mut self, now: Cycle) -> bool {
        if self.port_cycle != now {
            self.port_cycle = now;
            self.ports_used = 0;
        }
        if self.ports_used < self.ports {
            self.ports_used += 1;
            true
        } else {
            false
        }
    }

    /// The memoized class of the set's last demand hit, if the repeat memo
    /// is armed for exactly `line` (never armed in naive mode or under a
    /// stateful replacement policy — see `repeat_hit_ok`). A `Some` result
    /// proves a demand lookup of `line` would take the memo path in
    /// [`Cache::demand_lookup`], so the caller may batch a run of such
    /// repeats with [`Cache::commit_repeat_hits`].
    pub fn repeat_memo(&self, line: LineAddr) -> Option<u8> {
        let (raw, _, class) = self.last_hit[self.set_of(line)];
        (raw == line.raw()).then_some(class)
    }

    /// Demand ports still free at `now` (same lazy per-cycle reset as
    /// [`Cache::try_take_port`], without consuming one).
    pub fn ports_free(&mut self, now: Cycle) -> u32 {
        if self.port_cycle != now {
            self.port_cycle = now;
            self.ports_used = 0;
        }
        self.ports - self.ports_used
    }

    /// Applies the batched side effects of `n` memoized repeat hits on
    /// `line` in one update: `n` ports consumed, `n` demand accesses and
    /// hits counted, and the dirty bit set if any of them wrote. The
    /// caller must have verified the memo via [`Cache::repeat_memo`] and
    /// that `n` ports are free at the current cycle.
    pub fn commit_repeat_hits(&mut self, line: LineAddr, n: u32, any_write: bool) {
        let (raw, slot, _) = self.last_hit[self.set_of(line)];
        debug_assert_eq!(raw, line.raw(), "memo must be armed for the run line");
        debug_assert!(self.ports_used + n <= self.ports);
        self.ports_used += n;
        self.stats.demand_accesses += u64::from(n);
        self.stats.demand_hits += u64::from(n);
        if any_write {
            self.dirty[slot as usize] = true;
        }
    }

    /// Looks up a demand access.
    ///
    /// Hit and merge outcomes apply their side effects (replacement
    /// recency, usefulness accounting, statistics) immediately, because they
    /// never need to be retried. A [`ProbeResult::Miss`] outcome applies
    /// *nothing*: the caller resolves the next level first and, once the
    /// miss commits, calls [`Cache::commit_demand_miss`] followed by
    /// [`Cache::alloc_mshr`]. This keeps retried accesses (downstream MSHRs
    /// full) from double-counting.
    pub fn demand_lookup(&mut self, line: LineAddr, ip: Ip, write: bool) -> ProbeResult {
        let raw = line.raw();
        let set = self.set_of(line);
        // Repeat of this set's most recent demand hit: the line is still
        // resident in the same slot (nothing installed in the set since),
        // its prefetched bit was consumed and `reused` set by the first
        // hit, and the replacement update is a proven no-op — only the two
        // demand counters and the dirty bit remain to apply.
        let (memo_raw, memo_i, memo_class) = self.last_hit[set];
        if memo_raw == raw {
            self.stats.demand_accesses += 1;
            self.stats.demand_hits += 1;
            if write {
                self.dirty[memo_i as usize] = true;
            }
            return ProbeResult::Hit {
                first_use_of_prefetch: false,
                pf_class: memo_class,
            };
        }
        let base = set * self.ways;
        let pred_idx = (raw as usize) & (self.way_pred.len() - 1);
        let pred = self.way_pred[pred_idx] as usize;
        let hit_slot = if !self.naive && pred < self.tags.len() && self.tags[pred] == raw {
            Some(pred)
        } else {
            let found = self.find_way(line).map(|w| base + w);
            if let Some(i) = found {
                self.way_pred[pred_idx] = i as u32;
            }
            found
        };
        if let Some(i) = hit_slot {
            let way = i - base;
            self.stats.demand_accesses += 1;
            self.stats.demand_hits += 1;
            self.repl.on_hit(
                set,
                way,
                ReplMeta {
                    ip,
                    is_prefetch: false,
                },
            );
            if write {
                self.dirty[i] = true;
            }
            self.reused[i] = true;
            let first_use = self.prefetched[i];
            let class = self.pf_class[i];
            if first_use {
                self.prefetched[i] = false;
                self.stats.useful_prefetch_hits += 1;
                self.stats.useful_by_class[class as usize & 3] += 1;
            }
            if self.repeat_hit_ok {
                self.last_hit[set] = (raw, i as u32, class);
            }
            return ProbeResult::Hit {
                first_use_of_prefetch: first_use,
                pf_class: class,
            };
        }
        // Line absent: check the MSHRs.
        if let Some(idx) = self.find_mshr(line) {
            self.stats.demand_accesses += 1;
            self.stats.demand_misses += 1;
            self.lifetime_misses += 1;
            let m = self.mshrs[idx].as_mut().expect("occupied");
            if m.is_prefetch {
                // A demand merging into an in-flight prefetch: the prefetch
                // was useful but late.
                self.stats.late_prefetch_hits += 1;
                self.stats.useful_prefetch_hits += 1;
                self.stats.useful_by_class[m.pf_class as usize & 3] += 1;
                m.is_prefetch = false;
            }
            if write {
                m.dirty = true;
            }
            return ProbeResult::MshrMerge { fill_at: m.fill_at };
        }
        if self.mshr_used >= self.mshrs.len() {
            self.stats.mshr_full_rejects += 1;
            return ProbeResult::MshrFull;
        }
        ProbeResult::Miss
    }

    /// Records the statistics for a committed demand miss (see
    /// [`Cache::demand_lookup`]).
    pub fn commit_demand_miss(&mut self) {
        self.stats.demand_accesses += 1;
        self.stats.demand_misses += 1;
        self.lifetime_misses += 1;
    }

    /// Demand misses since construction — never reset by warm-up. This is
    /// the raw counter prefetchers use for their own MPKI estimates.
    pub fn lifetime_misses(&self) -> u64 {
        self.lifetime_misses
    }

    /// Probe used on the prefetch path: no demand statistics, no recency
    /// update on hit (ChampSim does not promote on prefetch hits at the same
    /// level), returns residency and in-flight state.
    pub fn prefetch_probe(&self, line: LineAddr) -> ProbeResult {
        // Read-only way-predictor consult: a verified prediction proves
        // residency (same argument as in `demand_lookup`), so the tag scan
        // only runs on predictor misses. `&self` means no predictor update
        // here — the demand path keeps it trained.
        let raw = line.raw();
        let pred = self.way_pred[(raw as usize) & (self.way_pred.len() - 1)] as usize;
        let resident = (!self.naive && pred < self.tags.len() && self.tags[pred] == raw)
            || self.find_way(line).is_some();
        if resident {
            return ProbeResult::Hit {
                first_use_of_prefetch: false,
                pf_class: 0,
            };
        }
        if let Some(idx) = self.find_mshr(line) {
            let m = self.mshrs[idx].as_ref().expect("occupied");
            return ProbeResult::MshrMerge { fill_at: m.fill_at };
        }
        if self.mshr_used >= self.mshrs.len() {
            return ProbeResult::MshrFull;
        }
        ProbeResult::Miss
    }

    fn find_mshr(&self, line: LineAddr) -> Option<usize> {
        let raw = line.raw();
        self.mshr_lines[..self.mshr_scan]
            .iter()
            .position(|&l| l == raw)
    }

    /// True when at least one MSHR is free.
    pub fn mshr_available(&self) -> bool {
        self.mshr_used < self.mshrs.len()
    }

    /// Number of occupied MSHRs.
    pub fn mshr_occupancy(&self) -> usize {
        self.mshr_used
    }

    /// Allocates an MSHR with a known fill time and schedules the fill.
    ///
    /// # Panics
    ///
    /// Panics if no MSHR is free (callers must check first).
    pub fn alloc_mshr(&mut self, mshr: Mshr) {
        // First free slot: a sentinel inside the occupied prefix, else the
        // slot right past it (everything beyond `mshr_scan` is free). The
        // caller's free-slot guarantee bounds that fallback within capacity.
        let idx = self.mshr_lines[..self.mshr_scan]
            .iter()
            .position(|&l| l == TAG_INVALID)
            .unwrap_or(self.mshr_scan);
        assert!(idx < self.mshrs.len(), "caller must ensure an MSHR is free");
        assert!(mshr.fill_at != FILL_UNKNOWN, "fill time must be resolved");
        debug_assert!(self.find_mshr(mshr.line).is_none(), "one MSHR per line");
        self.mshr_lines[idx] = mshr.line.raw();
        self.mshr_scan = self.mshr_scan.max(idx + 1);
        self.pending_fills.push(Reverse((mshr.fill_at, idx)));
        self.next_fill = self.next_fill.min(mshr.fill_at);
        self.mshrs[idx] = Some(mshr);
        self.mshr_used += 1;
    }

    /// The earliest scheduled fill time, if any fill is outstanding. O(1):
    /// reads the incrementally maintained mirror of the fill heap's min.
    pub fn next_fill_time(&self) -> Option<Cycle> {
        (self.next_fill != FILL_UNKNOWN).then_some(self.next_fill)
    }

    /// The cached fill-heap minimum, `FILL_UNKNOWN` when nothing is
    /// outstanding. The wakeup scheduler registers this in its calendar.
    pub fn next_fill_raw(&self) -> Cycle {
        self.next_fill
    }

    /// True when a scheduled fill is due at or before `now`. One compare on
    /// the cached minimum — the scheduler's per-cycle gate.
    pub fn fill_due(&self, now: Cycle) -> bool {
        self.next_fill <= now
    }

    /// Pops the next fill whose time has arrived, freeing its MSHR.
    pub fn pop_ready_fill(&mut self, now: Cycle) -> Option<Mshr> {
        let &Reverse((t, idx)) = self.pending_fills.peek()?;
        if t > now {
            return None;
        }
        self.pending_fills.pop();
        self.next_fill = self
            .pending_fills
            .peek()
            .map_or(FILL_UNKNOWN, |&Reverse((t, _))| t);
        let m = self.mshrs[idx].take().expect("scheduled fill has an MSHR");
        self.mshr_lines[idx] = TAG_INVALID;
        while self.mshr_scan > 0 && self.mshr_lines[self.mshr_scan - 1] == TAG_INVALID {
            self.mshr_scan -= 1;
        }
        self.mshr_used -= 1;
        Some(m)
    }

    /// Installs `line`, returning eviction info. `is_prefetch` marks the
    /// line for usefulness accounting; `pf_class` is stored in the 2-bit
    /// per-line class field.
    pub fn install(
        &mut self,
        line: LineAddr,
        ip: Ip,
        is_prefetch: bool,
        pf_class: u8,
        dirty: bool,
    ) -> Option<Evicted> {
        debug_assert!(line.raw() != TAG_INVALID, "line collides with sentinel");
        let set = self.set_of(line);
        // The fill (and a possible eviction) changes this set's replacement
        // state and may overwrite the memoized slot — the repeat-hit
        // guarantee no longer holds for the set.
        self.last_hit[set] = (TAG_INVALID, 0, 0);
        let base = set * self.ways;
        let free = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == TAG_INVALID);
        let (way, evicted) = match free {
            Some(w) => (w, None),
            None => {
                let w = self.repl.victim(set);
                let i = base + w;
                let unused_prefetch = self.prefetched[i];
                if unused_prefetch {
                    self.stats.pf_useless_evicted += 1;
                }
                self.repl.on_evict(set, w, self.reused[i]);
                let ev = Evicted {
                    line: LineAddr::new(self.tags[i]),
                    dirty: self.dirty[i],
                    unused_prefetch,
                };
                (w, Some(ev))
            }
        };
        let i = base + way;
        self.tags[i] = line.raw();
        let pred_idx = (line.raw() as usize) & (self.way_pred.len() - 1);
        self.way_pred[pred_idx] = i as u32;
        self.dirty[i] = dirty;
        self.prefetched[i] = is_prefetch;
        self.pf_class[i] = pf_class & 3;
        self.reused[i] = false;
        self.repl.on_fill(set, way, ReplMeta { ip, is_prefetch });
        if is_prefetch {
            self.stats.pf_fills += 1;
            self.stats.fills_by_class[pf_class as usize & 3] += 1;
        }
        evicted
    }

    /// Marks a resident line dirty (write-back arriving from above). Returns
    /// whether the line was present.
    pub fn writeback_hit(&mut self, line: LineAddr) -> bool {
        if let Some(way) = self.find_way(line) {
            let i = self.set_of(line) * self.ways + way;
            self.dirty[i] = true;
            true
        } else {
            false
        }
    }

    /// Queues a prefetch request; returns `false` (and counts the drop) when
    /// the PQ is full.
    pub fn enqueue_prefetch(&mut self, qp: QueuedPrefetch) -> bool {
        if self.pq.len() >= self.pq_capacity {
            self.stats.pf_dropped_pq_full += 1;
            return false;
        }
        self.stats.pf_issued += 1;
        self.pq.push_back(qp);
        true
    }

    /// Peeks at the PQ head.
    pub fn peek_prefetch(&self) -> Option<&QueuedPrefetch> {
        self.pq.front()
    }

    /// Pops the PQ head.
    pub fn pop_prefetch(&mut self) -> Option<QueuedPrefetch> {
        self.pq.pop_front()
    }

    /// Current PQ occupancy.
    pub fn pq_len(&self) -> usize {
        self.pq.len()
    }

    /// Resets statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn l1d() -> Cache {
        Cache::new(&SimConfig::default().l1d, 1)
    }

    const IP: Ip = Ip(0x400);

    #[test]
    fn miss_then_hit() {
        let mut c = l1d();
        let line = LineAddr::new(0x1000);
        assert_eq!(c.demand_lookup(line, IP, false), ProbeResult::Miss);
        c.commit_demand_miss();
        c.alloc_mshr(Mshr {
            line,
            fill_at: 10,
            is_prefetch: false,
            pf_class: 0,
            dirty: false,
            ip: IP,
        });
        // Merge while in flight.
        match c.demand_lookup(line, IP, false) {
            ProbeResult::MshrMerge { fill_at } => assert_eq!(fill_at, 10),
            other => panic!("expected merge, got {other:?}"),
        }
        assert!(c.pop_ready_fill(9).is_none());
        let m = c.pop_ready_fill(10).unwrap();
        assert_eq!(m.line, line);
        c.install(line, IP, false, 0, false);
        assert!(matches!(
            c.demand_lookup(line, IP, false),
            ProbeResult::Hit { .. }
        ));
        assert_eq!(c.stats.demand_accesses, 3);
        assert_eq!(c.stats.demand_hits, 1);
        assert_eq!(c.stats.demand_misses, 2);
        assert_eq!(c.lifetime_misses(), 2);
    }

    #[test]
    fn uncommitted_miss_counts_nothing() {
        let mut c = l1d();
        assert_eq!(
            c.demand_lookup(LineAddr::new(1), IP, false),
            ProbeResult::Miss
        );
        assert_eq!(c.stats.demand_accesses, 0);
        assert_eq!(c.stats.demand_misses, 0);
    }

    #[test]
    fn mshr_full_rejects() {
        let mut c = l1d();
        for i in 0..16 {
            let line = LineAddr::new(0x100 + i);
            assert_eq!(c.demand_lookup(line, IP, false), ProbeResult::Miss);
            c.commit_demand_miss();
            c.alloc_mshr(Mshr {
                line,
                fill_at: 100,
                is_prefetch: false,
                pf_class: 0,
                dirty: false,
                ip: IP,
            });
        }
        assert!(!c.mshr_available());
        assert_eq!(
            c.demand_lookup(LineAddr::new(0x900), IP, false),
            ProbeResult::MshrFull
        );
        assert_eq!(c.stats.mshr_full_rejects, 1);
        // Fill one; capacity returns.
        assert!(c.pop_ready_fill(100).is_some());
        assert!(c.mshr_available());
    }

    #[test]
    fn prefetch_usefulness_tracked() {
        let mut c = l1d();
        let line = LineAddr::new(0x2000);
        c.install(line, IP, true, 3, false);
        assert_eq!(c.stats.pf_fills, 1);
        assert_eq!(c.stats.fills_by_class[3], 1);
        match c.demand_lookup(line, IP, false) {
            ProbeResult::Hit {
                first_use_of_prefetch,
                pf_class,
            } => {
                assert!(first_use_of_prefetch);
                assert_eq!(pf_class, 3);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats.useful_prefetch_hits, 1);
        assert_eq!(c.stats.useful_by_class[3], 1);
        // Second hit is no longer a first use.
        match c.demand_lookup(line, IP, false) {
            ProbeResult::Hit {
                first_use_of_prefetch,
                ..
            } => assert!(!first_use_of_prefetch),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats.useful_prefetch_hits, 1);
    }

    #[test]
    fn late_prefetch_merge_counts_useful() {
        let mut c = l1d();
        let line = LineAddr::new(0x3000);
        c.alloc_mshr(Mshr {
            line,
            fill_at: 50,
            is_prefetch: true,
            pf_class: 1,
            dirty: false,
            ip: IP,
        });
        match c.demand_lookup(line, IP, false) {
            ProbeResult::MshrMerge { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats.late_prefetch_hits, 1);
        assert_eq!(c.stats.useful_prefetch_hits, 1);
        // The fill must now install as a demand line (not prefetched).
        let m = c.pop_ready_fill(50).unwrap();
        assert!(!m.is_prefetch);
    }

    #[test]
    fn eviction_reports_unused_prefetch_and_dirty() {
        // 12-way L1D: fill 13 lines in the same set.
        let mut c = l1d();
        let sets = 64u64;
        // First line: prefetched, never used, dirty via RFO? No — keep it
        // purely prefetched to check the unused flag.
        c.install(LineAddr::new(0), IP, true, 2, false);
        for i in 1..12 {
            c.install(LineAddr::new(i * sets), IP, false, 0, false);
            // Touch so LRU victimizes line 0.
            let _ = c.demand_lookup(LineAddr::new(i * sets), IP, true);
        }
        let ev = c
            .install(LineAddr::new(12 * sets), IP, false, 0, false)
            .unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
        assert!(ev.unused_prefetch);
        assert!(!ev.dirty);
        assert_eq!(c.stats.pf_useless_evicted, 1);
        // Dirty eviction: make the set overflow again; victim was stored to.
        let ev2 = c
            .install(LineAddr::new(13 * sets), IP, false, 0, false)
            .unwrap();
        assert!(ev2.dirty, "RFO-touched line must write back");
    }

    #[test]
    fn pq_capacity_enforced() {
        let mut c = l1d(); // PQ = 8
        let qp = |i: u64| QueuedPrefetch {
            req: PrefetchRequest::l1(LineAddr::new(i)),
            pline: LineAddr::new(i),
            ip: IP,
        };
        for i in 0..8 {
            assert!(c.enqueue_prefetch(qp(i)));
        }
        assert!(!c.enqueue_prefetch(qp(99)));
        assert_eq!(c.stats.pf_dropped_pq_full, 1);
        assert_eq!(c.stats.pf_issued, 8);
        assert_eq!(c.pop_prefetch().unwrap().pline, LineAddr::new(0));
        assert_eq!(c.pq_len(), 7);
    }

    #[test]
    fn ports_limit_per_cycle() {
        let mut c = l1d(); // 2 ports
        assert!(c.try_take_port(7));
        assert!(c.try_take_port(7));
        assert!(!c.try_take_port(7));
        // A new cycle resets the port budget lazily.
        assert!(c.try_take_port(8));
    }

    #[test]
    fn next_fill_time_tracks_heap() {
        let mut c = l1d();
        assert_eq!(c.next_fill_time(), None);
        assert!(!c.fill_due(Cycle::MAX - 1));
        for (i, t) in [30u64, 10, 20].iter().enumerate() {
            c.alloc_mshr(Mshr {
                line: LineAddr::new(0x100 + i as u64),
                fill_at: *t,
                is_prefetch: false,
                pf_class: 0,
                dirty: false,
                ip: IP,
            });
        }
        assert_eq!(c.next_fill_time(), Some(10));
        assert!(c.fill_due(10) && !c.fill_due(9));
        assert!(c.pop_ready_fill(10).is_some());
        assert_eq!(c.next_fill_time(), Some(20));
        assert!(c.pop_ready_fill(30).is_some());
        assert!(c.pop_ready_fill(30).is_some());
        assert_eq!(c.next_fill_time(), None);
    }

    #[test]
    fn writeback_hit_sets_dirty() {
        let mut c = l1d();
        let line = LineAddr::new(0x77);
        assert!(!c.writeback_hit(line));
        c.install(line, IP, false, 0, false);
        assert!(c.writeback_hit(line));
    }

    #[test]
    fn naive_mode_matches_fast_path() {
        let cfg = SimConfig::default();
        let mut fast = Cache::new(&cfg.l1d, 1);
        let mut slow = Cache::new_with_mode(&cfg.l1d, 1, true);
        // Pseudo-random demand stream over more lines than the cache holds:
        // exercises the repeat-hit memo, the way predictor, and evictions
        // on the fast side against the always-scan slow side.
        let mut x = 1u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let line = LineAddr::new((x >> 40) & 0x3ff);
            let write = x & 1 == 0;
            let rf = fast.demand_lookup(line, IP, write);
            let rs = slow.demand_lookup(line, IP, write);
            assert_eq!(rf, rs);
            if rf == ProbeResult::Miss {
                fast.commit_demand_miss();
                slow.commit_demand_miss();
                fast.install(line, IP, false, 0, write);
                slow.install(line, IP, false, 0, write);
            }
        }
        assert_eq!(fast.stats, slow.stats);
        assert_eq!(fast.lifetime_misses(), slow.lifetime_misses());
    }

    #[test]
    fn scale_multiplies_resources() {
        let cfg = SimConfig::default();
        let llc4 = Cache::new(&cfg.llc, 4);
        assert_eq!(llc4.sets, 8192); // 8 MB / 64 B / 16 ways
        assert_eq!(llc4.mshrs.len(), 256);
        assert_eq!(llc4.pq_capacity, 128);
    }
}
