//! Dependency-free ports of the registry-gated property tests in
//! `invariants.rs`: the same cache-accounting and residency-model
//! properties, driven by the deterministic workload RNG instead of
//! `proptest` so they run in a plain `cargo test -q` (no registry access
//! needed). The proptest originals remain behind the `proptest` feature.

use ipcp_mem::{Ip, LineAddr};
use ipcp_sim::cache::{Cache, Mshr, ProbeResult, QueuedPrefetch};
use ipcp_sim::config::SimConfig;
use ipcp_sim::prefetch::PrefetchRequest;
use ipcp_workloads::rng::Rng64;

/// Random demand/fill/prefetch interleavings never violate cache
/// accounting: accesses = hits + misses, MSHR occupancy bounded, no line
/// both resident and in flight, useful ≤ fills + merges + hits.
#[test]
fn cache_accounting_holds_fuzzed() {
    for seed in 0..64u64 {
        let cfg = SimConfig::default();
        let mut c = Cache::new(&cfg.l1d, 1);
        let mut rng = Rng64::new(0xacc0_0000 + seed);
        let mut now = 0u64;
        let ip = Ip(0x400);
        for step in 0..600 {
            match rng.below(3) {
                0 => {
                    let line = LineAddr::new(rng.below(4096));
                    let write = rng.chance(1, 2);
                    if let ProbeResult::Miss = c.demand_lookup(line, ip, write) {
                        if c.mshr_available() {
                            c.commit_demand_miss();
                            c.alloc_mshr(Mshr {
                                line,
                                fill_at: now + 200,
                                is_prefetch: false,
                                pf_class: 0,
                                dirty: write,
                                ip,
                            });
                        }
                    }
                }
                1 => {
                    now += 1 + rng.below(399);
                    while let Some(m) = c.pop_ready_fill(now) {
                        assert!(
                            !c.contains(m.line),
                            "seed {seed} step {step}: double fill of {:?}",
                            m.line
                        );
                        c.install(m.line, m.ip, m.is_prefetch, m.pf_class, m.dirty);
                    }
                }
                _ => {
                    let line = LineAddr::new(rng.below(4096));
                    if let ProbeResult::Miss = c.prefetch_probe(line) {
                        if c.mshr_available() {
                            c.alloc_mshr(Mshr {
                                line,
                                fill_at: now + 150,
                                is_prefetch: true,
                                pf_class: 1,
                                dirty: false,
                                ip,
                            });
                        }
                    }
                    let _ = c.enqueue_prefetch(QueuedPrefetch {
                        req: PrefetchRequest::l1(line),
                        pline: line,
                        ip,
                    });
                }
            }
            let s = c.stats;
            assert_eq!(s.demand_accesses, s.demand_hits + s.demand_misses);
            assert!(s.useful_prefetch_hits <= s.pf_fills + s.late_prefetch_hits + s.demand_hits);
            assert!(c.mshr_occupancy() <= 16);
            assert!(c.pq_len() <= 8);
        }
    }
}

/// Sentinel-tag residency equivalence: `contains` (validity folded into
/// the tag as `u64::MAX`) must agree with a plain installed-lines set
/// model under arbitrary install/evict/probe interleavings.
#[test]
fn sentinel_tags_match_residency_model_fuzzed() {
    for seed in 0..64u64 {
        let cfg = SimConfig::default();
        let mut c = Cache::new(&cfg.l1d, 1);
        let mut resident = std::collections::HashSet::new();
        let mut rng = Rng64::new(0x5e11_0000 + seed);
        let ip = Ip(0x400);
        for i in 0..300 {
            let line = LineAddr::new(rng.below(512));
            if resident.contains(&line) {
                continue; // install() requires non-resident lines
            }
            if let Some(ev) = c.install(line, ip, i % 3 == 0, 0, false) {
                assert!(
                    resident.remove(&ev.line),
                    "seed {seed}: evicted a non-resident line"
                );
            }
            resident.insert(line);
        }
        for _ in 0..300 {
            let line = LineAddr::new(rng.below(512));
            assert_eq!(c.contains(line), resident.contains(&line));
        }
        for line in &resident {
            assert!(c.contains(*line), "seed {seed}: installed line not found");
        }
    }
}
