//! Behavioral tests for the system model: warm-up accounting, write-back
//! traffic, instruction-fetch pressure, port limits, and the prefetch
//! fill-level plumbing.

use std::sync::Arc;

use ipcp_sim::prefetch::{
    AccessInfo, FillLevel, NoPrefetcher, PrefetchRequest, PrefetchSink, Prefetcher,
};
use ipcp_sim::{run_single, SimConfig};
use ipcp_trace::{Instr, VecTrace};

fn cfg(warmup: u64, sim: u64) -> SimConfig {
    SimConfig::default().with_instructions(warmup, sim)
}

fn stream_trace(name: &str, loads: u64, stride_lines: u64, pad: u64) -> Arc<VecTrace> {
    let mut v = Vec::new();
    for i in 0..loads {
        v.push(Instr::load(0x40_0000, 0x100_0000 + i * stride_lines * 64));
        for k in 0..pad {
            v.push(Instr::nop(0x40_0100 + (k % 8) * 4));
        }
    }
    Arc::new(VecTrace::new(name, v))
}

#[test]
fn warmup_resets_measured_counters() {
    // A trace whose first phase misses (cold) and then loops in cache:
    // with a warm-up longer than the cold phase, measured misses are ~0.
    let mut v = Vec::new();
    for rep in 0..600 {
        for l in 0..128u64 {
            v.push(Instr::load(0x40_0000, 0x20_0000 + l * 64));
            v.push(Instr::nop(0x40_0104));
        }
        let _ = rep;
    }
    let t = Arc::new(VecTrace::new("loop", v));
    let r = run_single(
        cfg(40_000, 80_000),
        t,
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    let l1 = &r.cores[0].l1d;
    assert!(
        l1.demand_misses < 20,
        "measured phase must be warm: {} misses",
        l1.demand_misses
    );
    assert!(l1.demand_accesses > 20_000);
}

#[test]
fn stores_generate_writeback_traffic() {
    // A store stream larger than the whole hierarchy must produce DRAM
    // writes roughly matching its footprint.
    let mut v = Vec::new();
    for i in 0..120_000u64 {
        v.push(Instr::store(0x40_0000, 0x1000_0000 + i * 64));
        v.push(Instr::nop(0x40_0104));
        v.push(Instr::nop(0x40_0108));
    }
    let t = Arc::new(VecTrace::new("stores", v));
    let r = run_single(
        cfg(20_000, 200_000),
        t,
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    assert!(
        r.dram.writes > 10_000,
        "dirty evictions must reach DRAM: {} writes",
        r.dram.writes
    );
    assert!(r.cores[0].l1d.writebacks > 10_000);
}

#[test]
fn instruction_footprint_pressures_l1i() {
    // Thousands of distinct instruction lines force L1I misses.
    let mut v = Vec::new();
    for rep in 0..40u64 {
        for ip_line in 0..4096u64 {
            v.push(Instr::nop(0x100_0000 + ip_line * 64 + (rep % 2) * 4));
        }
    }
    let t = Arc::new(VecTrace::new("bigcode", v));
    let r = run_single(
        cfg(10_000, 100_000),
        t,
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    assert!(
        r.cores[0].l1i.demand_misses > 1_000,
        "L1I misses: {}",
        r.cores[0].l1i.demand_misses
    );
    // And the small-code control: near-zero I-misses.
    let small = stream_trace("smallcode", 30_000, 1, 2);
    let r2 = run_single(
        cfg(10_000, 60_000),
        small,
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    assert!(r2.cores[0].l1i.demand_misses < 50);
}

#[test]
fn l1d_ports_bound_throughput() {
    // An all-load resident trace cannot exceed 2 loads/cycle (2 L1D ports),
    // even though the core is 4-wide.
    let mut v = Vec::new();
    for rep in 0..800u64 {
        for l in 0..64u64 {
            v.push(Instr::load(0x40_0000, 0x20_0000 + l * 64));
        }
        let _ = rep;
    }
    let t = Arc::new(VecTrace::new("allloads", v));
    let r = run_single(
        cfg(5_000, 40_000),
        t,
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    let ipc = r.ipc();
    assert!(ipc <= 2.05, "port limit violated: IPC {ipc}");
    assert!(ipc > 1.5, "ports should still sustain ~2/cycle: IPC {ipc}");
}

/// Prefetcher that tags requests for a chosen fill level.
struct FillAt(FillLevel);
impl Prefetcher for FillAt {
    fn name(&self) -> &'static str {
        "fill-at"
    }
    fn on_access(&mut self, info: &AccessInfo, sink: &mut dyn PrefetchSink) {
        for k in 1..=2 {
            if let Some(t) = info.vline.offset_within_page(k) {
                sink.prefetch(PrefetchRequest {
                    line: t,
                    virtual_addr: true,
                    fill: self.0,
                    pf_class: 0,
                    meta: None,
                });
            }
        }
    }
}

#[test]
fn fill_levels_route_to_their_caches() {
    let t = || stream_trace("s", 60_000, 1, 3);
    let l1fill = run_single(
        cfg(10_000, 80_000),
        t(),
        Box::new(FillAt(FillLevel::L1)),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    let l2fill = run_single(
        cfg(10_000, 80_000),
        t(),
        Box::new(FillAt(FillLevel::L2)),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    assert!(l1fill.cores[0].l1d.pf_fills + l1fill.cores[0].l1d.late_prefetch_hits > 1_000);
    assert_eq!(
        l2fill.cores[0].l1d.pf_fills, 0,
        "L2-targeted prefetches must not fill L1"
    );
    let l2_landed = l2fill.cores[0].l2.pf_fills + l2fill.cores[0].l2.late_prefetch_hits;
    assert!(
        l2_landed > 1_000,
        "L2-targeted prefetches must land at L2 (fills or merges): {l2_landed}"
    );
    // Filling to L1 must serve demands at least as well as filling to L2.
    assert!(l1fill.ipc() >= l2fill.ipc() * 0.95);
}

#[test]
fn page_walks_cost_cycles() {
    // Page-crossing stride (64 lines) touches a new page per load: far more
    // TLB walks than a dense stream, and a lower IPC for the same load count.
    let sparse = stream_trace("sparse", 40_000, 64, 3);
    let dense = stream_trace("dense", 40_000, 1, 3);
    let rs = run_single(
        cfg(5_000, 40_000),
        sparse,
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    let rd = run_single(
        cfg(5_000, 40_000),
        dense,
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    assert!(
        rs.cores[0].tlb.stlb_misses > rd.cores[0].tlb.stlb_misses * 10,
        "sparse: {} walks, dense: {}",
        rs.cores[0].tlb.stlb_misses,
        rd.cores[0].tlb.stlb_misses
    );
}

#[test]
fn pq_capacity_drops_are_counted() {
    /// Degree-16 flood: guaranteed to overflow the 8-entry L1 PQ.
    struct Flood;
    impl Prefetcher for Flood {
        fn name(&self) -> &'static str {
            "flood"
        }
        fn on_access(&mut self, info: &AccessInfo, sink: &mut dyn PrefetchSink) {
            for k in 1..=16 {
                if let Some(t) = info.vline.offset_within_page(k) {
                    sink.prefetch(PrefetchRequest {
                        line: t,
                        virtual_addr: true,
                        fill: FillLevel::L1,
                        pf_class: 0,
                        meta: None,
                    });
                }
            }
        }
    }
    let t = stream_trace("s", 40_000, 3, 2);
    let r = run_single(
        cfg(5_000, 40_000),
        t,
        Box::new(Flood),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    assert!(
        r.cores[0].l1d.pf_dropped_pq_full > 0,
        "a degree-16 flood must overflow the 8-entry PQ"
    );
}
