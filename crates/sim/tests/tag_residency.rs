//! Deterministic equivalence check of the sentinel-tag `find_way` scan:
//! the cache folds validity into the tag array (`u64::MAX` = empty way),
//! and a line's residency must still match a plain set-of-installed-lines
//! model — exactly what the old explicit `valid`-bit scan computed. The
//! proptest variant lives in `invariants.rs` (feature-gated on the
//! external `proptest` crate); this xorshift-driven run is always on.

use std::collections::HashSet;

use ipcp_mem::{Ip, LineAddr};
use ipcp_sim::cache::Cache;
use ipcp_sim::config::SimConfig;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn sentinel_tag_scan_matches_residency_model() {
    let cfg = SimConfig::default();
    for (level, lcfg) in [("l1d", &cfg.l1d), ("l2", &cfg.l2), ("llc", &cfg.llc)] {
        let mut c = Cache::new(lcfg, 1);
        let mut resident: HashSet<LineAddr> = HashSet::new();
        let mut rng = 0x1bc9_5eed_u64 ^ lcfg.size_bytes;
        let ip = Ip(0x400);
        // Enough installs to cycle every set through fills and evictions.
        let universe = lcfg.sets() * u64::from(lcfg.ways) * 4;
        for i in 0..20_000u64 {
            let line = LineAddr::new(xorshift(&mut rng) % universe);
            if resident.contains(&line) {
                continue; // install() requires non-resident lines
            }
            if let Some(ev) = c.install(line, ip, i % 5 == 0, 0, i % 7 == 0) {
                assert!(
                    resident.remove(&ev.line),
                    "{level}: evicted {:?} which the model never saw installed",
                    ev.line
                );
            }
            resident.insert(line);
        }
        // Every probe — resident or not — must agree with the model,
        // including lines that were installed and since evicted.
        for probe in 0..universe {
            let line = LineAddr::new(probe);
            assert_eq!(
                c.contains(line),
                resident.contains(&line),
                "{level}: residency of {line:?} diverges from the model"
            );
        }
        assert!(
            !resident.is_empty() && resident.len() <= (lcfg.sets() * u64::from(lcfg.ways)) as usize,
            "{level}: model tracks at most the cache capacity"
        );
    }
}
