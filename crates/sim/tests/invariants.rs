//! Property tests on simulator invariants: arbitrary access sequences must
//! keep every counter and structure consistent.
//!
//! Requires the external `proptest` crate: build with the `proptest`
//! feature (and registry access) to run these; see Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use ipcp_mem::{Ip, LineAddr};
use ipcp_sim::cache::QueuedPrefetch;
use ipcp_sim::cache::{Cache, Mshr, ProbeResult};
use ipcp_sim::config::SimConfig;
use ipcp_sim::prefetch::PrefetchRequest;

#[derive(Debug, Clone)]
enum Op {
    Demand { line: u64, write: bool },
    Fill { advance: u64 },
    Prefetch { line: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4096, any::<bool>()).prop_map(|(line, write)| Op::Demand { line, write }),
        (1u64..400).prop_map(|advance| Op::Fill { advance }),
        (0u64..4096).prop_map(|line| Op::Prefetch { line }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random demand/fill/prefetch interleavings never violate cache
    /// accounting: accesses = hits + misses, MSHR occupancy bounded, no
    /// line both resident and in flight, useful ≤ fills + merges.
    #[test]
    fn cache_accounting_holds(ops in proptest::collection::vec(arb_op(), 1..600)) {
        let cfg = SimConfig::default();
        let mut c = Cache::new(&cfg.l1d, 1);
        let mut now = 0u64;
        let ip = Ip(0x400);
        for op in ops {
            match op {
                Op::Demand { line, write } => {
                    let line = LineAddr::new(line);
                    match c.demand_lookup(line, ip, write) {
                        ProbeResult::Miss => {
                            if c.mshr_available() {
                                c.commit_demand_miss();
                                c.alloc_mshr(Mshr {
                                    line,
                                    fill_at: now + 200,
                                    is_prefetch: false,
                                    pf_class: 0,
                                    dirty: write,
                                    ip,
                                });
                            }
                        }
                        ProbeResult::Hit { .. } | ProbeResult::MshrMerge { .. } | ProbeResult::MshrFull => {}
                    }
                }
                Op::Fill { advance } => {
                    now += advance;
                    while let Some(m) = c.pop_ready_fill(now) {
                        // A fill's line must not already be resident.
                        prop_assert!(!c.contains(m.line), "double fill of {:?}", m.line);
                        c.install(m.line, m.ip, m.is_prefetch, m.pf_class, m.dirty);
                    }
                }
                Op::Prefetch { line } => {
                    let line = LineAddr::new(line);
                    if let ProbeResult::Miss = c.prefetch_probe(line) {
                        if c.mshr_available() {
                            c.alloc_mshr(Mshr {
                                line,
                                fill_at: now + 150,
                                is_prefetch: true,
                                pf_class: 1,
                                dirty: false,
                                ip,
                            });
                        }
                    }
                    let _ = c.enqueue_prefetch(QueuedPrefetch {
                        req: PrefetchRequest::l1(line),
                        pline: line,
                        ip,
                    });
                }
            }
            let s = c.stats;
            prop_assert_eq!(s.demand_accesses, s.demand_hits + s.demand_misses);
            prop_assert!(s.useful_prefetch_hits <= s.pf_fills + s.late_prefetch_hits + s.demand_hits);
            prop_assert!(c.mshr_occupancy() <= 16);
            prop_assert!(c.pq_len() <= 8);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sentinel-tag residency equivalence: `find_way`'s single-compare scan
    /// (validity folded into the tag as `u64::MAX`) must agree with a plain
    /// set-of-installed-lines model under arbitrary install/evict/probe
    /// interleavings — the model is exactly what the old explicit
    /// `valid`-bit scan computed.
    #[test]
    fn sentinel_tags_match_residency_model(
        installs in proptest::collection::vec(0u64..512, 1..300),
        probes in proptest::collection::vec(0u64..512, 1..300),
    ) {
        let cfg = SimConfig::default();
        let mut c = Cache::new(&cfg.l1d, 1);
        let mut resident = std::collections::HashSet::new();
        let ip = Ip(0x400);
        for (i, line) in installs.iter().enumerate() {
            let line = LineAddr::new(*line);
            if resident.contains(&line) {
                continue; // install() requires non-resident lines
            }
            if let Some(ev) = c.install(line, ip, i % 3 == 0, 0, false) {
                prop_assert!(resident.remove(&ev.line), "evicted a non-resident line");
            }
            resident.insert(line);
        }
        for line in probes {
            let line = LineAddr::new(line);
            prop_assert_eq!(c.contains(line), resident.contains(&line));
        }
        for line in &resident {
            prop_assert!(c.contains(*line), "installed line not found");
        }
    }
}

#[test]
fn tlb_translation_is_a_function() {
    // The same vpage must always map to the same frame, across DTLB/STLB
    // hits, evictions, and walks.
    use ipcp_mem::VPage;
    use ipcp_sim::tlb::Tlb;
    use ipcp_sim::vmem::PageMapper;

    let mut tlb = Tlb::new(&SimConfig::default().tlb);
    let mut mapper = PageMapper::new(99);
    let mut seen = std::collections::HashMap::new();
    // A sweep large enough to force DTLB and STLB evictions.
    for round in 0..3 {
        for v in 0..4000u64 {
            let (p, _) = tlb.translate(VPage::new(v), &mut mapper);
            if let Some(&prev) = seen.get(&v) {
                assert_eq!(p, prev, "vpage {v} remapped in round {round}");
            } else {
                seen.insert(v, p);
            }
        }
    }
    // All frames distinct (the mapper is injective).
    let frames: std::collections::HashSet<_> = seen.values().collect();
    assert_eq!(frames.len(), seen.len());
}
