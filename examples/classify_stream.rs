//! Watch the IPCP classifier work: drive the L1 prefetcher directly (no
//! simulator) with the three access patterns from Section III of the paper
//! and print which class fires for each.
//!
//! Run with: `cargo run --release --example classify_stream`

use ipcp::{IpClass, IpcpConfig, IpcpL1};
use ipcp_mem::{Ip, LineAddr};
use ipcp_sim::prefetch::{AccessInfo, AddrDecode, DemandKind, Prefetcher, VecSink};

fn access(ip: u64, line: u64) -> AccessInfo {
    AccessInfo {
        cycle: 0,
        ip: Ip(ip),
        vline: LineAddr::new(line),
        pline: LineAddr::new(line),
        kind: DemandKind::Load,
        hit: false,
        first_use_of_prefetch: false,
        hit_pf_class: 0,
        instructions: 0,
        demand_misses: 0,
        dram_utilization: 0.0,
        decode: AddrDecode::of(Ip(ip), LineAddr::new(line)),
    }
}

fn drive(p: &mut IpcpL1, label: &str, accesses: &[(u64, u64)]) {
    println!("--- {label}");
    let mut last_print = 0;
    for (i, &(ip, line)) in accesses.iter().enumerate() {
        let mut sink = VecSink::new();
        p.on_access(&access(ip, line), &mut sink);
        if !sink.requests.is_empty() && i >= last_print {
            let classes: Vec<IpClass> = sink
                .requests
                .iter()
                .map(|r| IpClass::from_bits(r.pf_class))
                .collect();
            let targets: Vec<i64> = sink
                .requests
                .iter()
                .map(|r| r.line.raw() as i64 - line as i64)
                .collect();
            println!(
                "  access #{i:2} ip={ip:#x} line={line:#x}: {:?} prefetches at relative lines {:?}",
                classes[0], targets
            );
            last_print = i + 4; // don't spam every access
        }
    }
}

fn main() {
    // Section III, IP A (bwaves): constant stride 3 -> CS class.
    let mut p = IpcpL1::new(IpcpConfig::default());
    let cs: Vec<(u64, u64)> = (0..12).map(|i| (0x401000, 0x4_0000 + i * 3)).collect();
    drive(&mut p, "IP A: C0,C3,C6,... (constant stride 3)", &cs);

    // Section III, IP B (mcf): strides 1,2,1,2 -> CPLX class.
    let mut p = IpcpL1::new(IpcpConfig::default());
    let mut line = 0x8_0000u64;
    let mut cplx = Vec::new();
    for i in 0..24 {
        cplx.push((0x402000, line));
        line += if i % 2 == 0 { 1 } else { 2 };
    }
    drive(&mut p, "IP B: C0,C1,C3,C4,C6,... (strides 1,2,1,2)", &cplx);

    // Section III, IPs C/D/E (lbm/gcc): a jumbled dense global stream -> GS.
    let mut p = IpcpL1::new(IpcpConfig::default());
    let base = 0xc_0000u64; // 2 KB region aligned
    let order = [
        0u64, 2, 1, 3, 6, 4, 5, 9, 8, 7, 10, 12, 11, 13, 15, 14, 16, 18, 17, 19, 21, 20, 22, 24,
        23, 25, 27, 26,
    ];
    let gs: Vec<(u64, u64)> = order
        .iter()
        .enumerate()
        .map(|(i, &o)| (0x403000 + (i as u64 % 3) * 36, base + o))
        .collect();
    drive(
        &mut p,
        "IPs C,D,E: jumbled dense region (global stream)",
        &gs,
    );

    println!();
    println!(
        "per-class issued counters [NL, CS, CPLX, GS]: {:?}",
        p.issued_by_class()
    );
}
