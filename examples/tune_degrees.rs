//! Design-space exploration with the public API: sweep IPCP's per-class
//! prefetch degrees on a GS-heavy workload and print the coverage /
//! accuracy / speedup trade-off — the experiment behind the paper's choice
//! of degree 3 (CS/CPLX) and 6 (GS).
//!
//! Run with: `cargo run --release --example tune_degrees`

use std::sync::Arc;

use ipcp::{IpcpConfig, IpcpL1, IpcpL2};
use ipcp_sim::prefetch::NoPrefetcher;
use ipcp_sim::{run_single, SimConfig};

fn main() {
    let trace = ipcp_workloads::by_name("wrf-gs-neg").expect("suite trace");
    let cfg = SimConfig::default().with_instructions(100_000, 400_000);

    let base = run_single(
        cfg.clone(),
        Arc::new(trace.clone()),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );
    println!(
        "workload: {} (negative-direction global stream)",
        ipcp_trace::TraceSource::name(&trace)
    );
    println!("baseline IPC {:.3}\n", base.ipc());
    println!("gs_degree  cs_degree  speedup  L1 accuracy  useless evicted");

    for gs_degree in [2u8, 4, 6, 8, 12] {
        for cs_degree in [1u8, 3] {
            let pcfg = IpcpConfig {
                gs_degree,
                cs_degree,
                ..IpcpConfig::default()
            };
            let r = run_single(
                cfg.clone(),
                Arc::new(trace.clone()),
                Box::new(IpcpL1::new(pcfg.clone())),
                Box::new(IpcpL2::new(pcfg)),
                Box::new(NoPrefetcher),
            );
            let l1 = &r.cores[0].l1d;
            println!(
                "{:9}  {:9}  {:7.3}  {:11.2}  {:15}",
                gs_degree,
                cs_degree,
                r.ipc() / base.ipc(),
                l1.accuracy().unwrap_or(0.0),
                l1.pf_useless_evicted,
            );
        }
    }
    println!("\npaper: degree 6 for GS is the sweet spot — a trained-dense region");
    println!("promises >75% of its lines will be touched, so aggression pays;");
    println!("beyond it, accuracy decays with no coverage left to win.");
}
