//! Quickstart: attach multi-level IPCP to the bundled ChampSim-like
//! simulator, run a stride-heavy workload, and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use ipcp::{IpcpConfig, IpcpL1, IpcpL2};
use ipcp_sim::prefetch::NoPrefetcher;
use ipcp_sim::{run_single, SimConfig};
use ipcp_workloads::gen::{blend, constant_stride, resident};

fn main() {
    // A bwaves-like workload: a 4-IP stride-3 stream over 64 MB, diluted by
    // a cache-resident hot set (1 stream access per ~40 instructions).
    let trace = blend(
        "quickstart-stride3",
        vec![
            (constant_stride("stream", 4, 3, 0, (64 << 20) / 64, 42), 1),
            (resident("hot", 512, 1), 40),
        ],
    );

    let cfg = SimConfig::default().with_instructions(100_000, 500_000);

    println!("running without prefetching ...");
    let base = run_single(
        cfg.clone(),
        Arc::new(trace.clone()),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
        Box::new(NoPrefetcher),
    );

    println!("running with multi-level IPCP (895 bytes of prefetcher state) ...");
    let ipcp = run_single(
        cfg,
        Arc::new(trace),
        Box::new(IpcpL1::new(IpcpConfig::default())),
        Box::new(IpcpL2::new(IpcpConfig::default())),
        Box::new(NoPrefetcher),
    );

    let b = &base.cores[0];
    let p = &ipcp.cores[0];
    println!();
    println!("                 baseline      IPCP");
    println!(
        "IPC              {:8.3}  {:8.3}",
        b.core.ipc(),
        p.core.ipc()
    );
    println!(
        "L1D MPKI         {:8.2}  {:8.2}",
        b.l1d.mpki(b.core.instructions),
        p.l1d.mpki(p.core.instructions)
    );
    println!(
        "LLC MPKI         {:8.2}  {:8.2}",
        base.llc_mpki(),
        ipcp.llc_mpki()
    );
    println!(
        "DRAM reads       {:8}  {:8}",
        base.dram.reads, ipcp.dram.reads
    );
    println!();
    println!(
        "IPCP issued {} prefetches, {} were useful (first-use hits or",
        p.l1d.pf_issued, p.l1d.useful_prefetch_hits
    );
    println!(
        "late merges); per-class useful [NL, CS, CPLX, GS] = {:?}",
        p.l1d.useful_by_class
    );
    println!();
    println!(
        "speedup: {:.1}%",
        (p.core.ipc() / b.core.ipc() - 1.0) * 100.0
    );
}
