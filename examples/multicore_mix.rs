//! Multi-core scenario: a heterogeneous 4-core mix sharing the LLC and
//! DRAM, comparing no prefetching against multi-level IPCP using the
//! paper's weighted-speedup metric.
//!
//! Run with: `cargo run --release --example multicore_mix`

use std::sync::Arc;

use ipcp::{IpcpConfig, IpcpL1, IpcpL2};
use ipcp_sim::prefetch::{NoPrefetcher, Prefetcher};
use ipcp_sim::{weighted_speedup, CoreSetup, SimConfig, System};
use ipcp_trace::TraceSource;
use ipcp_workloads::by_name;

fn ipcp_pair() -> (Box<dyn Prefetcher>, Box<dyn Prefetcher>) {
    (
        Box::new(IpcpL1::new(IpcpConfig::default())),
        Box::new(IpcpL2::new(IpcpConfig::default())),
    )
}

fn none_pair() -> (Box<dyn Prefetcher>, Box<dyn Prefetcher>) {
    (Box::new(NoPrefetcher), Box::new(NoPrefetcher))
}

fn main() {
    let mix = ["bwaves-cs3", "gcc-gs-2226", "mcf-irr-994", "xz-cplx-334"];
    let traces: Vec<_> = mix
        .iter()
        .map(|n| by_name(n).expect("suite trace"))
        .collect();
    let scale = (50_000u64, 200_000u64);

    // Per-trace alone-IPCs: each benchmark running by itself on the 4-core
    // machine (full LLC, multicore DRAM) — the paper's IPC_alone.
    let alone: Vec<f64> = traces
        .iter()
        .map(|t| {
            let mut cfg = SimConfig::multicore(4).with_instructions(scale.0, scale.1);
            cfg.cores = 1;
            cfg.llc.size_bytes *= 4;
            let (l1, l2) = none_pair();
            let mut sys = System::new(
                cfg,
                vec![CoreSetup::new(Arc::new(t.clone()), l1, l2)],
                Box::new(NoPrefetcher),
            );
            sys.run().ipc()
        })
        .collect();

    let run_mix = |with_ipcp: bool| {
        let cfg = SimConfig::multicore(4).with_instructions(scale.0, scale.1);
        let setups = traces
            .iter()
            .map(|t| {
                let (l1, l2) = if with_ipcp { ipcp_pair() } else { none_pair() };
                CoreSetup::new(Arc::new(t.clone()), l1, l2)
            })
            .collect();
        let mut sys = System::new(cfg, setups, Box::new(NoPrefetcher));
        sys.run()
    };

    println!("4-core mix: {mix:?}");
    let base = run_mix(false);
    let with = run_mix(true);

    println!("\nper-core IPCs (baseline -> IPCP):");
    for (i, trace) in traces.iter().enumerate() {
        println!(
            "  core{} {:14} {:.3} -> {:.3}",
            i,
            trace.name(),
            base.cores[i].core.ipc(),
            with.cores[i].core.ipc()
        );
    }
    let ws_base = weighted_speedup(&base, &alone);
    let ws_ipcp = weighted_speedup(&with, &alone);
    println!("\nweighted speedup (sum over cores of IPC_together/IPC_alone):");
    println!("  no prefetching: {ws_base:.3}");
    println!("  IPCP (L1+L2):   {ws_ipcp:.3}");
    println!(
        "  normalized gain: {:+.1}%",
        (ws_ipcp / ws_base - 1.0) * 100.0
    );
    println!(
        "\nshared-resource pressure: DRAM bus utilization {:.0}% -> {:.0}%",
        100.0 * base.dram_bus_utilization(),
        100.0 * with.dram_bus_utilization()
    );
}
