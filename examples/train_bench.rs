//! Microbenchmark: raw IpcpL1::on_access throughput on a strided stream.
//! Run with: `cargo run --release --example train_bench`

use ipcp::{IpcpConfig, IpcpL1};
use ipcp_mem::{Ip, LineAddr};
use ipcp_sim::prefetch::{AccessInfo, AddrDecode, DemandKind, Prefetcher, VecSink};

fn main() {
    let mut p = IpcpL1::new(IpcpConfig::default());
    let mut sink = VecSink::new();
    let n: u64 = 10_000_000;
    let t0 = std::time::Instant::now();
    let mut issued = 0u64;
    for i in 0..n {
        let line = LineAddr::new(0x10000 + i);
        let ip = Ip(0x400100);
        let info = AccessInfo {
            cycle: i,
            ip,
            vline: line,
            pline: line,
            kind: DemandKind::Load,
            hit: true,
            first_use_of_prefetch: false,
            hit_pf_class: 0,
            instructions: i,
            demand_misses: i / 100,
            dram_utilization: 0.3,
            decode: AddrDecode::of(ip, line),
        };
        p.on_access(&info, &mut sink);
        issued += sink.requests.len() as u64;
        sink.requests.clear();
    }
    let dt = t0.elapsed();
    println!(
        "{n} accesses in {:.3}s = {:.1} ns/access ({issued} reqs)",
        dt.as_secs_f64(),
        dt.as_secs_f64() * 1e9 / n as f64
    );
}
